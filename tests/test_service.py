"""The service tier: wire codecs, tenant registry, job manager, HTTP.

Covers the four layers of :mod:`repro.service` bottom-up: JSON codecs
round-trip (structures by fingerprint, answers with UNKNOWN never
coerced), the session registry applies overlays and LRU-evicts with
``close()``, the job manager runs every kind with admission control
and durable records, and the asyncio HTTP front serves submit / get /
SSE / health / config / metrics end-to-end — including a simulated
restart that recovers jobs from the store.
"""

import json
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.errors import (
    Answer,
    Budget,
    JobCancelled,
    ResourceExhausted,
    WorkerFailure,
)
from repro.core.store import JOB_NS, LEASE_NS, DurableStore
from repro.core.structure import path_structure
from repro.service import (
    AdmissionError,
    JobManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SessionRegistry,
    wire,
)
from repro.service.jobs import Job, validate_payload
from repro.workloads import instance_family
from repro import zoo

QUERY = path_structure(["T", "", "F"])
FAMILY = instance_family(6, 8, 14, seed=3)


def sjson(structure):
    return wire.structure_to_json(structure)


def screen_payload(instances=FAMILY, queries=(QUERY,)):
    return {
        "queries": [sjson(q) for q in queries],
        "instances": [sjson(i) for i in instances],
    }


def base_config(**overrides):
    defaults = dict(workers=0, service_port=0)
    defaults.update(overrides)
    return EngineConfig(**defaults)


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


class TestWire:
    def test_structure_round_trip_preserves_fingerprint(self):
        for s in (QUERY, zoo.q5(), FAMILY[0]):
            back = wire.structure_from_json(sjson(s))
            assert back.fingerprint == s.fingerprint

    def test_structure_json_is_deterministic(self):
        assert json.dumps(sjson(QUERY)) == json.dumps(sjson(QUERY))

    def test_structure_from_json_rejects_garbage(self):
        for bad in (None, [], {"nodes": []}, {"unary": [["F"]]}):
            with pytest.raises(wire.WireError):
                wire.structure_from_json(bad)

    def test_answer_round_trip(self):
        for a in (True, False, Answer.TRUE, Answer.FALSE):
            encoded = wire.answer_to_json(a)
            assert isinstance(encoded, bool)
            assert wire.answer_from_json(encoded) == bool(a)
        encoded = wire.answer_to_json(Answer.unknown("fuel"))
        assert encoded == {"unknown": "fuel"}
        back = wire.answer_from_json(encoded)
        assert isinstance(back, Answer) and not back.known
        assert back.reason == "fuel"

    def test_answer_to_json_rejects_non_answers(self):
        with pytest.raises(wire.WireError):
            wire.answer_to_json("yes")

    def test_config_to_json_is_json_and_complete(self):
        config = base_config(cache_dir="/tmp/x")
        data = json.loads(json.dumps(wire.config_to_json(config)))
        assert data["workers"] == 0
        assert data["service_port"] == 0
        assert data["effective_workers"] == 0
        assert data["cache_path"].endswith("repro_store.sqlite")
        # every config field is present
        from dataclasses import fields

        for f in fields(config):
            assert f.name in data


# ----------------------------------------------------------------------
# Session registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_sessions_are_cached_per_tenant(self):
        with SessionRegistry(base_config()) as reg:
            assert reg.get("a") is reg.get("a")
            assert reg.get("a") is not reg.get("b")

    def test_overlay_resolves_and_validates(self):
        with SessionRegistry(base_config()) as reg:
            reg.set_overlay("t", hom_fuel=7)
            assert reg.get("t").config.hom_fuel == 7
            assert reg.get("other").config.hom_fuel is None
            with pytest.raises(TypeError):
                reg.set_overlay("t", not_a_knob=1)
            with pytest.raises(ValueError):
                reg.set_overlay("t", backend="simd")

    def test_lru_evicts_and_closes(self):
        with SessionRegistry(base_config(), capacity=2) as reg:
            a = reg.get("a")
            reg.get("b")
            reg.get("a")  # refresh a; b is now LRU
            reg.get("c")  # evicts b
            assert reg.tenants() == ["a", "c"]
            assert reg.evictions == 1
            assert reg.get("a") is a

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SessionRegistry(base_config(), capacity=0)

    def test_metrics_shape(self):
        with SessionRegistry(base_config()) as reg:
            reg.get("a")
            m = reg.metrics()
            assert m["live"] == 1 and "a" in m["tenants"]
            assert "hom_cache" in m["tenants"]["a"]


# ----------------------------------------------------------------------
# Job manager
# ----------------------------------------------------------------------


class TestJobManager:
    def manager(self, config=None, store=None):
        registry = SessionRegistry(config or base_config())
        return JobManager(registry, store=store)

    def test_validate_payload_rejects_bad_requests(self):
        with pytest.raises(wire.WireError):
            validate_payload("frobnicate", {})
        with pytest.raises(wire.WireError):
            validate_payload("decide", {})
        with pytest.raises(wire.WireError):
            validate_payload("evaluate", {"query": sjson(QUERY)})
        with pytest.raises(wire.WireError):
            validate_payload("screen", {"queries": [], "instances": []})

    def test_decide_evaluate_probe_screen_lifecycle(self):
        mgr = self.manager()
        try:
            jobs = {
                "decide": mgr.submit(
                    "decide", {"query": sjson(zoo.q5()), "probe_depth": 2}
                ),
                "evaluate": mgr.submit(
                    "evaluate",
                    {
                        "query": sjson(QUERY),
                        "data": sjson(FAMILY[0]),
                        "semiring": "count",
                    },
                ),
                "probe": mgr.submit(
                    "probe", {"query": sjson(zoo.q4()), "probe_depth": 2}
                ),
                "screen": mgr.submit("screen", screen_payload()),
            }
            for kind, job in jobs.items():
                assert job.wait(60), kind
                assert job.status == "done", (kind, job.error)
            assert jobs["decide"].result["bounded"] is True
            assert jobs["evaluate"].result["value"] == 1
            assert jobs["probe"].result["verdict"]
            matrix = jobs["screen"].result["matrix"]
            assert len(matrix) == 1 and len(matrix[0]) == len(FAMILY)
            assert all(isinstance(a, bool) for a in matrix[0])
            # screen emitted completion-ordered shard events that
            # jointly cover the family exactly once
            spans = sorted(
                (e["start"], e["stop"]) for e in jobs["screen"].events
            )
            assert spans[0][0] == 0
            assert spans[-1][1] == len(FAMILY)
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        finally:
            mgr.close()

    def test_failed_job_isolates_error(self):
        mgr = self.manager()
        try:
            # q1 has two solitary F nodes: OneCQ.from_structure raises
            job = mgr.submit("probe", {"query": sjson(zoo.q1())})
            assert job.wait(30)
            assert job.status == "failed"
            assert "ValueError" in job.error
            assert mgr.metrics()["failed"] == 1
        finally:
            mgr.close()

    def test_tenant_cap_queues_not_rejects(self):
        mgr = self.manager(
            base_config(service_tenant_jobs=1, service_threads=4)
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            j1 = mgr.submit("decide", {"query": sjson(QUERY)})
            j2 = mgr.submit("decide", {"query": sjson(QUERY)})
            deadline = time.monotonic() + 5
            while j1.status != "running" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert j1.status == "running"
            assert j2.status == "queued"  # capped, not rejected
            gate.set()
            assert j1.wait(10) and j2.wait(10)
            assert j1.status == j2.status == "done"
        finally:
            gate.set()
            mgr.close()

    def test_backlog_overflow_rejects_with_admission_error(self):
        mgr = self.manager(
            base_config(service_queue_depth=1, service_threads=1)
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            mgr.submit("decide", {"query": sjson(QUERY)})
            with pytest.raises(AdmissionError):
                mgr.submit("decide", {"query": sjson(QUERY)})
            assert mgr.metrics()["rejected"] == 1
        finally:
            gate.set()
            mgr.close()

    def test_governed_unknown_preserved(self):
        mgr = self.manager(base_config(hom_fuel=1))
        try:
            job = mgr.submit(
                "evaluate",
                {"query": sjson(zoo.q2()), "data": sjson(zoo.d2())},
            )
            assert job.wait(30)
            assert job.status == "done"
            assert job.result["value"] is None
            assert job.result["answer"] == {"unknown": "fuel"}
        finally:
            mgr.close()

    def test_records_persist_and_recover(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = self.manager(config, store=store)
        try:
            job = mgr.submit("screen", screen_payload())
            assert job.wait(60) and job.status == "done"
            record = store.job_get(job.id)
            assert record["status"] == "done"
            matrix = record["result"]["matrix"]
        finally:
            mgr.close()
        # a fresh manager over the same store serves the settled job
        # and re-enqueues an in-flight one under its original id
        crashed = Job("deadcafe0001", "default", "screen", screen_payload())
        store.job_put(crashed.id, crashed.snapshot())
        mgr2 = self.manager(config, store=store)
        try:
            assert mgr2.recover() == 1
            settled = mgr2.get(job.id)
            assert settled is not None and settled.status == "done"
            assert settled.result["matrix"] == matrix
            resumed = mgr2.get("deadcafe0001")
            assert resumed.wait(60) and resumed.status == "done"
            assert resumed.result["matrix"] == matrix
        finally:
            mgr2.close()
            store.close()


# ----------------------------------------------------------------------
# Session.screen shard hook (the runtime plumbing the service rides)
# ----------------------------------------------------------------------


class TestScreenShardHook:
    def test_on_shard_fires_and_covers(self):
        from repro.session import Session

        spans = []
        with Session(base_config()) as s:
            want = s.screen([QUERY], FAMILY)
            got = s.screen(
                [QUERY],
                FAMILY,
                on_shard=lambda sh: spans.append((sh.start, sh.stop)),
            )
        assert got == want
        spans.sort()
        assert spans[0][0] == 0 and spans[-1][1] == len(FAMILY)
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_on_shard_incompatible_with_stream(self):
        from repro.session import Session

        with Session(base_config()) as s:
            with pytest.raises(ValueError):
                s.screen([QUERY], FAMILY, stream=True, on_shard=print)


# ----------------------------------------------------------------------
# HTTP front
# ----------------------------------------------------------------------


def collect_watch(client, job_id):
    shards, final = [], None
    for event, data in client.watch(job_id):
        if event == "shard":
            shards.append(data)
        else:
            final = data
    return shards, final


class TestServiceHTTP:
    def test_end_to_end(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)

            health = client.healthz()
            assert health["status"] == "ok"

            served = client.config()
            assert served == wire.config_to_json(config)

            record = client.submit("screen", screen_payload())
            assert record["status"] in ("queued", "running", "done")
            assert "payload" not in record

            shards, final = collect_watch(client, record["id"])
            assert final["status"] == "done"
            spans = sorted((s["start"], s["stop"]) for s in shards)
            assert spans[0][0] == 0 and spans[-1][1] == len(FAMILY)
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

            got = client.job(record["id"])
            assert got["status"] == "done"
            assert got["progress"] == {
                "done": len(FAMILY),
                "total": len(FAMILY),
            }

            metrics = client.metrics()
            assert metrics["service"]["completed"] == 1
            assert metrics["registry"]["live"] == 1

    def test_error_statuses(self, tmp_path):
        with ServiceServer(base_config(cache_dir=str(tmp_path))) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as exc:
                client.job("nope")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                client.submit("frobnicate", {})
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client.submit("decide", {})
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client._request("GET", "/nope")
            assert exc.value.status == 404

    def test_backlog_overflow_is_429(self, tmp_path):
        config = base_config(
            cache_dir=str(tmp_path), service_queue_depth=0
        )
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as exc:
                client.submit("decide", {"query": sjson(QUERY)})
            assert exc.value.status == 429

    def test_unknown_survives_the_wire(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path), hom_fuel=1)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit(
                "evaluate",
                {"query": sjson(zoo.q2()), "data": sjson(zoo.d2())},
            )
            final = client.wait(record["id"])
            assert final["status"] == "done"
            assert final["result"]["answer"] == {"unknown": "fuel"}
            decoded = wire.answer_from_json(final["result"]["answer"])
            assert isinstance(decoded, Answer) and not decoded.known

    def test_restart_recovers_jobs_from_store(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        payload = screen_payload()
        with ServiceServer(config) as first:
            client = ServiceClient(first.host, first.port)
            record = client.submit("screen", payload)
            done = client.wait(record["id"])
            matrix = done["result"]["matrix"]
        # simulate a crash with an in-flight job left in the store
        store = DurableStore.open(tmp_path, config.cache_bytes)
        crashed = Job("deadcafe0002", "default", "screen", payload)
        store.job_put(crashed.id, crashed.snapshot())
        store.close()
        with ServiceServer(config) as second:
            client = ServiceClient(second.host, second.port)
            # the settled job is served from its record, SSE included
            served = client.job(record["id"])
            assert served["status"] == "done"
            assert served["result"]["matrix"] == matrix
            shards, final = collect_watch(client, record["id"])
            assert final["status"] == "done" and shards
            # the in-flight job re-ran (from checkpoints) to the same
            # matrix under its original id
            resumed = client.wait("deadcafe0002")
            assert resumed["status"] == "done"
            assert resumed["result"]["matrix"] == matrix
            assert client.metrics()["service"]["recovered"] == 1


# ----------------------------------------------------------------------
# Supervision: cancellation, bounded retry, leases, drain
# ----------------------------------------------------------------------


def make_manager(config=None, store=None):
    registry = SessionRegistry(config or base_config())
    return JobManager(registry, store=store)


def wait_status(job, status, timeout=5.0):
    deadline = time.monotonic() + timeout
    while job.status != status and time.monotonic() < deadline:
        time.sleep(0.005)
    return job.status == status


class TestBudgetCancelHook:
    def test_checkpoint_raises_job_cancelled(self):
        flag = threading.Event()
        b = Budget(cancel=flag.is_set)
        b.checkpoint()  # not yet flagged
        flag.set()
        with pytest.raises(JobCancelled):
            b.checkpoint()

    def test_charge_polls_the_hook_periodically(self):
        flag = threading.Event()
        flag.set()
        b = Budget(cancel=flag.is_set)
        with pytest.raises(JobCancelled):
            for _ in range(5000):  # > the periodic check interval
                b.charge()

    def test_job_cancelled_is_not_resource_exhaustion(self):
        # Governed surfaces turn ResourceExhausted into UNKNOWN partial
        # answers; a cancellation must escape that net entirely.
        assert not issubclass(JobCancelled, ResourceExhausted)

    def test_active_budget_is_thread_local(self):
        # The session's budget slot is per-thread: two concurrent
        # operations each install and see their own budget, never the
        # sibling's (whose cancel hook belongs to a different job).
        from repro.session import Session

        session = Session(base_config())
        barrier = threading.Barrier(2, timeout=10)
        own_budget_seen = []

        def operation():
            assert session.active_budget is None
            budget = Budget(cancel=lambda: False)
            session.active_budget = budget
            barrier.wait()  # both threads now hold an installed budget
            own_budget_seen.append(session.active_budget is budget)
            session.active_budget = None

        try:
            threads = [
                threading.Thread(target=operation) for _ in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(10)
            assert own_budget_seen == [True, True]
            assert session.active_budget is None
        finally:
            session.close()


class TestCancellation:
    def test_cancel_queued_job_settles_immediately(self):
        mgr = make_manager(
            base_config(service_tenant_jobs=1, service_threads=4)
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            j1 = mgr.submit("decide", {"query": sjson(QUERY)})
            j2 = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(j1, "running")
            assert j2.status == "queued"
            got = mgr.cancel(j2.id)
            assert got is j2 and j2.status == "cancelled"
            assert j2.error == "cancelled before start"
            # idempotent: cancelling a settled job changes nothing
            assert mgr.cancel(j2.id).status == "cancelled"
            gate.set()
            assert j1.wait(10) and j1.status == "done"
            assert mgr.metrics()["cancelled"] == 1
        finally:
            gate.set()
            mgr.close()

    def test_cancel_unknown_job_returns_none(self):
        mgr = make_manager()
        try:
            assert mgr.cancel("nope") is None
        finally:
            mgr.close()

    def test_cancel_does_not_leak_into_sibling_job(self):
        # Regression: with the budget slot shared session-wide, a
        # concurrent same-tenant job picked up the cancelled job's
        # budget and settled CANCELLED itself.  The slot is thread-local
        # now, so the sibling installs its own budget and survives.
        from repro.service.jobs import _job_scope

        mgr = make_manager(base_config(service_tenant_jobs=2))
        victim_running = threading.Event()
        victim_release = threading.Event()

        def fake_execute(job):
            session = mgr.registry.get(job.tenant)
            with _job_scope(session, job):
                budget = session.active_budget
                assert budget is not None, "scope must install a budget"
                if job.payload.get("who") == "victim":
                    victim_running.set()
                    victim_release.wait(15)
                    budget.checkpoint()  # raises JobCancelled here
                    return {"survived": True}
                # the victim is running *and flagged* right now; this
                # job's own budget must not observe that cancel
                budget.checkpoint()
                return {"ok": True}

        mgr._execute = fake_execute
        try:
            victim = mgr.submit(
                "decide", {"query": sjson(QUERY), "who": "victim"}
            )
            assert victim_running.wait(10)
            mgr.cancel(victim.id)
            sibling = mgr.submit("decide", {"query": sjson(QUERY)})
            assert sibling.wait(15) and sibling.status == "done"
            assert sibling.result == {"ok": True}
            victim_release.set()
            assert victim.wait(15) and victim.status == "cancelled"
            assert mgr.metrics()["cancelled"] == 1
        finally:
            victim_release.set()
            mgr.close()

    def test_cancel_between_shards_keeps_checkpoints(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = make_manager(config, store=store)
        try:
            session = mgr.registry.get("default")
            real_screen = session.screen
            holder: dict = {}
            ready = threading.Event()

            def cancel_after_first(queries, instances, **kw):
                for shard in real_screen(queries, instances, **kw):
                    yield shard
                    assert ready.wait(10)
                    mgr.cancel(holder["id"])

            session.screen = cancel_after_first
            job = mgr.submit("screen", screen_payload())
            holder["id"] = job.id
            ready.set()
            assert job.wait(30)
            assert job.status == "cancelled"
            assert "cancelled between shards" in job.error
            # the settled shard streamed; nothing after the cancel did
            assert len(job.events) == 1
            assert job.progress_done < job.progress_total
            record = store.job_get(job.id)
            assert record["status"] == "cancelled"
            # the settled span is checkpointed: a resubmission replays
            # it from disk and completes to the full matrix
            session.screen = real_screen
            redo = mgr.submit("screen", screen_payload())
            assert redo.wait(60) and redo.status == "done"
            assert len(redo.result["matrix"][0]) == len(FAMILY)
        finally:
            mgr.close()
            store.close()


class TestRetryQuarantine:
    def retry_config(self, **overrides):
        return base_config(
            service_retry_max=3, service_retry_backoff_ms=1, **overrides
        )

    def test_transient_failure_retries_then_succeeds(self):
        mgr = make_manager(self.retry_config())
        calls = []

        def flaky(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise WorkerFailure("worker lost mid-shard")
            return {"ok": True}

        mgr._execute = flaky
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert job.wait(30)
            assert job.status == "done" and job.result == {"ok": True}
            assert job.attempts == 2
            assert mgr.metrics()["retried"] == 1
            assert mgr.metrics()["quarantined"] == 0
        finally:
            mgr.close()

    def test_poison_job_quarantined_after_max_attempts(self):
        mgr = make_manager(self.retry_config())

        def poison(job):
            raise WorkerFailure("boom")

        mgr._execute = poison
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert job.wait(30)
            assert job.status == "failed"
            assert job.attempts == 3
            assert job.error.startswith("quarantined after 3 attempts")
            m = mgr.metrics()
            assert m["quarantined"] == 1 and m["retried"] == 2
        finally:
            mgr.close()

    def test_jobfail_fault_plan_drives_real_quarantine(self):
        # The service-tier fault mode: the ordinal-th _execute call
        # raises WorkerFailure, so a plan covering every retry of the
        # first job quarantines it while a later job runs clean.
        mgr = make_manager(
            self.retry_config(
                fault_plan=(("jobfail", 0), ("jobfail", 1), ("jobfail", 2))
            )
        )
        try:
            poison = mgr.submit("decide", {"query": sjson(QUERY)})
            assert poison.wait(30)
            assert poison.status == "failed" and poison.attempts == 3
            assert "injected job fault" in poison.error
            clean = mgr.submit("decide", {"query": sjson(zoo.q5())})
            assert clean.wait(30) and clean.status == "done"
        finally:
            mgr.close()

    def test_retry_resets_stale_events_and_progress(self):
        # A screen job that streamed shards before a transient failure
        # must not keep them across the retry: the re-run replays the
        # settled prefix from its checkpoints and re-emits it, so stale
        # events would stream every shard twice and push progress past
        # total.
        mgr = make_manager(self.retry_config())
        attempts = []

        def flaky_screen(job):
            attempts.append(job.id)
            half = job.progress_total // 2
            job.add_event({"start": 0, "stop": half}, advance=half)
            if len(attempts) == 1:
                raise WorkerFailure("worker lost mid-screen")
            job.add_event(
                {"start": half, "stop": job.progress_total},
                advance=job.progress_total - half,
            )
            return {"matrix": [[]]}

        mgr._execute = flaky_screen
        try:
            job = mgr.submit("screen", screen_payload())
            assert job.wait(30) and job.status == "done"
            assert job.attempts == 2
            assert job.progress_done == job.progress_total
            half = job.progress_total // 2
            spans = [(e["start"], e["stop"]) for e in job.events]
            assert spans == [(0, half), (half, job.progress_total)]
        finally:
            mgr.close()

    def test_deterministic_error_fails_on_first_attempt(self):
        mgr = make_manager(self.retry_config())

        def buggy(job):
            raise ValueError("this will never work")

        mgr._execute = buggy
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert job.wait(30)
            assert job.status == "failed" and job.attempts == 1
            assert mgr.metrics()["retried"] == 0
        finally:
            mgr.close()

    def test_backoff_is_exponential_capped_and_jittered(self):
        mgr = make_manager(
            base_config(service_retry_backoff_ms=1000)
        )
        try:
            for attempts, nominal in ((1, 1.0), (2, 2.0), (3, 4.0)):
                delay = mgr._backoff_s(attempts)
                assert nominal * 0.5 <= delay < nominal
            assert mgr._backoff_s(50) <= 30.0  # capped, whatever 2^49 says
        finally:
            mgr.close()


class TestLeases:
    def test_running_job_holds_lease_until_settled(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = make_manager(config, store=store)
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(job, "running")
            lease = store.lease_get(job.id)
            assert lease is not None and lease["owner"] == mgr.owner
            assert lease["expires"] > time.time()
            gate.set()
            assert job.wait(10) and job.status == "done"
            deadline = time.monotonic() + 5
            while store.lease_get(job.id) and time.monotonic() < deadline:
                time.sleep(0.01)
            assert store.lease_get(job.id) is None
        finally:
            gate.set()
            mgr.close()
            store.close()

    def test_recover_registers_foreign_lease_read_only(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        running = Job("deadcafe0010", "default", "decide",
                      {"query": sjson(QUERY)})
        running.status = "running"
        store.job_put(running.id, running.snapshot())
        store.lease_acquire(running.id, "sibling-abc", ttl_s=60.0)
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 0
            # visible, but not executing here: a live sibling owns it
            ghost = mgr.get(running.id)
            assert ghost is not None and ghost.status == "running"
            m = mgr.metrics()
            assert m["lease_skips"] == 1 and m["running"] == 0
            lease = store.lease_get(running.id)
            assert lease["owner"] == "sibling-abc"  # untouched
        finally:
            mgr.close()
            store.close()

    def test_orphaned_foreign_lease_adopted_after_expiry(self, tmp_path):
        config = base_config(
            cache_dir=str(tmp_path), service_lease_ttl_ms=50
        )
        store = DurableStore.open(tmp_path, config.cache_bytes)
        orphan = Job("deadcafe0014", "default", "decide",
                     {"query": sjson(zoo.q5()), "probe_depth": 2})
        orphan.status = "running"
        store.job_put(orphan.id, orphan.snapshot())
        # an owner that just died: its lease is live now but will
        # never be renewed again
        store.lease_acquire(orphan.id, "dying-sibling", ttl_s=0.3)
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 0
            job = mgr.get(orphan.id)
            assert job is not None and job.status == "running"
            # once the lease lapses the heartbeat sweep adopts the job
            # (the same Job object, so waiters see it settle)
            assert job.wait(30) and job.status == "done"
            assert mgr.metrics()["adopted"] == 1
        finally:
            mgr.close()
            store.close()

    def test_run_defers_to_live_foreign_lease(self, tmp_path):
        # _run must honour a refused lease claim: the job parks as a
        # foreign placeholder instead of double-executing, then the
        # heartbeat sweep adopts and runs it once the sibling's lease
        # lapses unrenewed.
        config = base_config(
            cache_dir=str(tmp_path), service_lease_ttl_ms=50
        )
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = make_manager(config, store=store)
        try:
            store.lease_acquire("deadcafe0042", "live-sibling", ttl_s=0.8)
            job = mgr.submit(
                "decide",
                {"query": sjson(zoo.q5()), "probe_depth": 2},
                job_id="deadcafe0042",
            )
            deadline = time.monotonic() + 5
            while (
                mgr.metrics()["lease_skips"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            m = mgr.metrics()
            assert m["lease_skips"] == 1 and m["running"] == 0
            # the sibling dies (never renews): the sweep takes over
            assert job.wait(30) and job.status == "done"
            assert mgr.metrics()["adopted"] == 1
        finally:
            mgr.close()
            store.close()

    def test_adoption_absorbs_foreign_terminal_record(self, tmp_path):
        # An owner that settles the job before releasing its lease must
        # have its terminal record absorbed, never re-executed.
        config = base_config(
            cache_dir=str(tmp_path), service_lease_ttl_ms=50
        )
        store = DurableStore.open(tmp_path, config.cache_bytes)
        foreign = Job("deadcafe0099", "default", "decide",
                      {"query": sjson(QUERY)})
        foreign.status = "running"
        store.job_put(foreign.id, foreign.snapshot())
        store.lease_acquire(foreign.id, "sibling-abc", ttl_s=60.0)
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 0
            ghost = mgr.get(foreign.id)
            assert ghost is not None and ghost.status == "running"
            # the sibling finishes: terminal record landed, lease gone
            record = foreign.snapshot()
            record["status"] = "done"
            record["result"] = {"ok": True}
            store.job_put(foreign.id, record)
            store.lease_release(foreign.id, "sibling-abc")
            assert ghost.wait(10) and ghost.status == "done"
            assert ghost.result == {"ok": True}
            assert mgr.metrics()["adopted"] == 0
            assert store.lease_get(foreign.id) is None
        finally:
            mgr.close()
            store.close()

    def test_recover_adopts_job_with_expired_lease(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        orphan = Job("deadcafe0011", "default", "decide",
                     {"query": sjson(zoo.q5()), "probe_depth": 2})
        orphan.status = "running"
        store.job_put(orphan.id, orphan.snapshot())
        # an owner that crashed: its lease expired long ago
        store.lease_acquire(
            orphan.id, "dead-owner", ttl_s=1.0, now=time.time() - 60
        )
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 1
            adopted = mgr.get(orphan.id)
            assert adopted is not None
            assert adopted.wait(30) and adopted.status == "done"
        finally:
            mgr.close()
            store.close()

    def test_recover_quarantines_persisted_attempt_count(self, tmp_path):
        config = base_config(
            cache_dir=str(tmp_path), service_retry_max=3
        )
        store = DurableStore.open(tmp_path, config.cache_bytes)
        poison = Job("deadcafe0012", "default", "decide",
                     {"query": sjson(QUERY)})
        poison.status = "running"
        poison.attempts = 3  # crashed the service three times already
        store.job_put(poison.id, poison.snapshot())
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 0
            job = mgr.get(poison.id)
            assert job is not None and job.status == "failed"
            assert job.error.startswith("quarantined after 3 attempts")
            assert mgr.metrics()["quarantined"] == 1
            assert store.job_get(poison.id)["status"] == "failed"
        finally:
            mgr.close()
            store.close()

    def test_stalled_executor_lease_lapses(self, tmp_path):
        # A thread that stops beating must become observable: the
        # heartbeat refuses to renew it, so its lease expires on disk.
        config = base_config(
            cache_dir=str(tmp_path), service_lease_ttl_ms=50
        )
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = make_manager(config, store=store)
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(30), {})[1]  # never beats
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(job, "running")
            # stall threshold is 6 TTLs = 0.3s; past it the lease lapses
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                lease = store.lease_get(job.id)
                if lease is not None and lease["expires"] < time.time():
                    break
                time.sleep(0.05)
            lease = store.lease_get(job.id)
            assert lease is not None and lease["expires"] < time.time()
        finally:
            gate.set()
            mgr.close()
            store.close()

    def test_lease_store_helpers(self, tmp_path):
        store = DurableStore.open(tmp_path, 1 << 20)
        assert store.lease_acquire("j", "a", ttl_s=60)
        assert not store.lease_acquire("j", "b", ttl_s=60)  # held by a
        assert store.lease_acquire("j", "a", ttl_s=60)  # reentrant
        assert store.lease_renew("j", "a", ttl_s=60)
        assert not store.lease_renew("j", "b", ttl_s=60)
        store.lease_release("j", "b")  # wrong owner: must not clobber
        assert store.lease_get("j")["owner"] == "a"
        store.lease_release("j", "a")
        assert store.lease_get("j") is None
        assert not store.lease_renew("j", "a", ttl_s=60)  # gone
        # an expired lease is free for the taking
        assert store.lease_acquire("k", "a", ttl_s=1, now=time.time() - 60)
        assert store.lease_acquire("k", "b", ttl_s=60)
        assert store.lease_list()["k"]["owner"] == "b"
        assert LEASE_NS in dict(store.stats().namespaces)
        store.close()


class TestDrainAndShed:
    def test_drain_stops_admission_with_503(self):
        mgr = make_manager(base_config(service_drain_ms=5000))
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            running = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(running, "running")
            mgr.begin_drain()
            with pytest.raises(AdmissionError) as exc:
                mgr.submit("decide", {"query": sjson(QUERY)})
            assert exc.value.status == 503
            assert exc.value.retry_after is not None
            assert mgr.metrics()["draining"] is True
            gate.set()
            assert mgr.drain(5.0) is True
            assert running.status == "done"
        finally:
            gate.set()
            mgr.close()

    def test_drain_deadline_reports_stuck_jobs(self):
        mgr = make_manager()
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(job, "running")
            assert mgr.drain(0.2) is False  # still running at deadline
        finally:
            gate.set()
            mgr.close()

    def test_close_records_running_jobs_interrupted(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = make_manager(config, store=store)
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(5), {})[1]
        try:
            job = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(job, "running")
        finally:
            mgr.close()
        record = store.job_get(job.id)
        assert record["status"] == "interrupted"
        assert store.lease_get(job.id) is None  # released for the heir
        gate.set()
        time.sleep(0.1)  # let the worker thread unwind
        store.close()

    def test_recover_requeues_interrupted_record(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        lost = Job("deadcafe0013", "default", "decide",
                   {"query": sjson(zoo.q5()), "probe_depth": 2})
        lost.attempts = 1
        record = lost.snapshot()
        record["status"] = "interrupted"
        store.job_put(lost.id, record)
        mgr = make_manager(config, store=store)
        try:
            assert mgr.recover() == 1
            job = mgr.get(lost.id)
            assert job.wait(30) and job.status == "done"
            assert job.attempts == 2  # the persisted attempt counted
        finally:
            mgr.close()
            store.close()

    def test_backlog_full_sheds_queued_longest(self):
        mgr = make_manager(
            base_config(
                service_queue_depth=2,
                service_tenant_jobs=1,
                service_threads=2,
            )
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            j1 = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(j1, "running")
            j2 = mgr.submit("decide", {"query": sjson(QUERY)})
            assert j2.status == "queued"
            j3 = mgr.submit("decide", {"query": sjson(QUERY)})
            # j2 waited longest; it was shed to make room for j3
            assert j2.status == "failed"
            assert j2.error == "shed: backlog full"
            assert mgr.metrics()["shed"] == 1
            gate.set()
            assert j1.wait(10) and j3.wait(10)
            assert j1.status == j3.status == "done"
        finally:
            gate.set()
            mgr.close()

    def test_shed_skips_already_settled_candidate(self):
        # Regression: the shed transition used to happen outside the
        # manager lock, so a cancel racing the popleft could have its
        # terminal CANCELLED overwritten by FAILED (a double settle).
        mgr = make_manager(
            base_config(
                service_queue_depth=2,
                service_tenant_jobs=1,
                service_threads=2,
            )
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            running = mgr.submit("decide", {"query": sjson(QUERY)})
            assert wait_status(running, "running")
            queued = mgr.submit("decide", {"query": sjson(QUERY)})
            assert queued.status == "queued"
            # simulate the race window: the candidate settles while
            # still sitting in the queue
            queued._transition("cancelled")
            overflow = mgr.submit("decide", {"query": sjson(QUERY)})
            assert queued.status == "cancelled"  # never flipped to failed
            assert mgr.metrics()["shed"] == 0
            gate.set()
            assert running.wait(10) and overflow.wait(10)
            assert running.status == overflow.status == "done"
        finally:
            gate.set()
            mgr.close()


# ----------------------------------------------------------------------
# Supervision over HTTP: cancel route, SSE cursor, drain 503, client
# ----------------------------------------------------------------------


class TestSupervisionHTTP:
    def test_cancel_route_and_cancelled_sse_frame(self, tmp_path):
        config = base_config(
            cache_dir=str(tmp_path), service_tenant_jobs=1
        )
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            gate = threading.Event()
            server.manager._execute = lambda job: (gate.wait(10), {})[1]
            try:
                first = client.submit("decide", {"query": sjson(QUERY)})
                queued = client.submit("decide", {"query": sjson(QUERY)})
                record = client.cancel(queued["id"])
                assert record["status"] == "cancelled"
                events = list(client.watch(queued["id"]))
                assert events[-1][0] == "cancelled"
                assert events[-1][1]["status"] == "cancelled"
                got = client.job(queued["id"])
                assert got["status"] == "cancelled"
                assert got["error"] == "cancelled before start"
                with pytest.raises(ServiceError) as exc:
                    client.cancel("nope")
                assert exc.value.status == 404
            finally:
                gate.set()
            assert client.wait(first["id"])["status"] == "done"

    def test_sse_cursor_skips_replayed_events(self, tmp_path):
        with ServiceServer(base_config(cache_dir=str(tmp_path))) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit("screen", screen_payload())
            shards, final = collect_watch(client, record["id"])
            assert final["status"] == "done" and len(shards) >= 2
            # re-watch from a mid-stream cursor: only the suffix replays
            tail = list(
                client._watch_once(record["id"], len(shards) - 1, 30.0)
            )
            tail_shards = [d for e, d in tail if e == "shard"]
            assert tail_shards == shards[-1:]
            assert tail[-1][0] == "done"

    def test_draining_server_sends_503_with_retry_after(self, tmp_path):
        import http.client as hc

        with ServiceServer(base_config(cache_dir=str(tmp_path))) as server:
            server.manager.begin_drain()
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as exc:
                client.submit("decide", {"query": sjson(QUERY)})
            assert exc.value.status == 503
            assert client.healthz()["status"] == "draining"
            conn = hc.HTTPConnection(server.host, server.port, timeout=10)
            try:
                conn.request(
                    "POST", "/v1/jobs",
                    body=json.dumps(
                        {"kind": "decide",
                         "payload": {"query": sjson(QUERY)}}
                    ),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                assert response.status == 503
                assert int(response.getheader("Retry-After")) >= 1
            finally:
                conn.close()


class TestClientResilience:
    def test_request_retries_transient_connection_errors(self):
        client = ServiceClient(retries=3, retry_backoff=0.001)
        calls = []

        def flaky(method, path, payload=None):
            calls.append(path)
            if len(calls) < 3:
                raise ConnectionRefusedError("server restarting")
            return {"ok": True}

        client._request_once = flaky
        assert client._request("GET", "/healthz") == {"ok": True}
        assert len(calls) == 3

    def test_request_gives_up_after_retry_budget(self):
        client = ServiceClient(retries=2, retry_backoff=0.001)

        def down(method, path, payload=None):
            raise ConnectionRefusedError("still down")

        client._request_once = down
        with pytest.raises(ConnectionRefusedError):
            client._request("GET", "/healthz")

    def test_watch_reconnects_from_last_cursor(self):
        client = ServiceClient(retries=3, retry_backoff=0.001)
        cursors = []

        def torn_stream(job_id, cursor, timeout):
            cursors.append(cursor)
            if len(cursors) == 1:
                yield "shard", {"start": 0, "stop": 1}
                raise ConnectionResetError("server restarted mid-stream")
            assert cursor == 1  # resumed exactly past the seen shard
            yield "shard", {"start": 1, "stop": 2}
            yield "done", {"status": "done"}

        client._watch_once = torn_stream
        events = list(client.watch("j", timeout=10.0))
        assert [e for e, _ in events] == ["shard", "shard", "done"]
        assert cursors == [0, 1]

    def test_watch_gives_up_without_progress(self):
        client = ServiceClient(retries=1, retry_backoff=0.001)

        def dead(job_id, cursor, timeout):
            raise ConnectionRefusedError("gone")
            yield  # pragma: no cover

        client._watch_once = dead
        with pytest.raises(ServiceError) as exc:
            list(client.watch("j", timeout=10.0))
        assert exc.value.status == 504


class TestJobNamespaceHelpers:
    def test_job_roundtrip_and_delete(self, tmp_path):
        store = DurableStore.open(tmp_path, 1 << 20)
        assert store.job_get("j1") is None
        store.job_put("j1", {"status": "queued"})
        store.job_put("j2", {"status": "done"})
        assert store.job_get("j1") == {"status": "queued"}
        assert set(store.job_list()) == {"j1", "j2"}
        store.job_delete("j1")
        store.job_delete("j1")  # idempotent
        assert store.job_get("j1") is None
        assert set(store.job_list()) == {"j2"}
        # job rows live in their own namespace
        assert JOB_NS in dict(store.stats().namespaces)
        store.close()
