"""The service tier: wire codecs, tenant registry, job manager, HTTP.

Covers the four layers of :mod:`repro.service` bottom-up: JSON codecs
round-trip (structures by fingerprint, answers with UNKNOWN never
coerced), the session registry applies overlays and LRU-evicts with
``close()``, the job manager runs every kind with admission control
and durable records, and the asyncio HTTP front serves submit / get /
SSE / health / config / metrics end-to-end — including a simulated
restart that recovers jobs from the store.
"""

import json
import threading
import time

import pytest

from repro.core.config import EngineConfig
from repro.core.errors import Answer
from repro.core.store import JOB_NS, DurableStore
from repro.core.structure import path_structure
from repro.service import (
    AdmissionError,
    JobManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SessionRegistry,
    wire,
)
from repro.service.jobs import Job, validate_payload
from repro.workloads import instance_family
from repro import zoo

QUERY = path_structure(["T", "", "F"])
FAMILY = instance_family(6, 8, 14, seed=3)


def sjson(structure):
    return wire.structure_to_json(structure)


def screen_payload(instances=FAMILY, queries=(QUERY,)):
    return {
        "queries": [sjson(q) for q in queries],
        "instances": [sjson(i) for i in instances],
    }


def base_config(**overrides):
    defaults = dict(workers=0, service_port=0)
    defaults.update(overrides)
    return EngineConfig(**defaults)


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------


class TestWire:
    def test_structure_round_trip_preserves_fingerprint(self):
        for s in (QUERY, zoo.q5(), FAMILY[0]):
            back = wire.structure_from_json(sjson(s))
            assert back.fingerprint == s.fingerprint

    def test_structure_json_is_deterministic(self):
        assert json.dumps(sjson(QUERY)) == json.dumps(sjson(QUERY))

    def test_structure_from_json_rejects_garbage(self):
        for bad in (None, [], {"nodes": []}, {"unary": [["F"]]}):
            with pytest.raises(wire.WireError):
                wire.structure_from_json(bad)

    def test_answer_round_trip(self):
        for a in (True, False, Answer.TRUE, Answer.FALSE):
            encoded = wire.answer_to_json(a)
            assert isinstance(encoded, bool)
            assert wire.answer_from_json(encoded) == bool(a)
        encoded = wire.answer_to_json(Answer.unknown("fuel"))
        assert encoded == {"unknown": "fuel"}
        back = wire.answer_from_json(encoded)
        assert isinstance(back, Answer) and not back.known
        assert back.reason == "fuel"

    def test_answer_to_json_rejects_non_answers(self):
        with pytest.raises(wire.WireError):
            wire.answer_to_json("yes")

    def test_config_to_json_is_json_and_complete(self):
        config = base_config(cache_dir="/tmp/x")
        data = json.loads(json.dumps(wire.config_to_json(config)))
        assert data["workers"] == 0
        assert data["service_port"] == 0
        assert data["effective_workers"] == 0
        assert data["cache_path"].endswith("repro_store.sqlite")
        # every config field is present
        from dataclasses import fields

        for f in fields(config):
            assert f.name in data


# ----------------------------------------------------------------------
# Session registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_sessions_are_cached_per_tenant(self):
        with SessionRegistry(base_config()) as reg:
            assert reg.get("a") is reg.get("a")
            assert reg.get("a") is not reg.get("b")

    def test_overlay_resolves_and_validates(self):
        with SessionRegistry(base_config()) as reg:
            reg.set_overlay("t", hom_fuel=7)
            assert reg.get("t").config.hom_fuel == 7
            assert reg.get("other").config.hom_fuel is None
            with pytest.raises(TypeError):
                reg.set_overlay("t", not_a_knob=1)
            with pytest.raises(ValueError):
                reg.set_overlay("t", backend="simd")

    def test_lru_evicts_and_closes(self):
        with SessionRegistry(base_config(), capacity=2) as reg:
            a = reg.get("a")
            reg.get("b")
            reg.get("a")  # refresh a; b is now LRU
            reg.get("c")  # evicts b
            assert reg.tenants() == ["a", "c"]
            assert reg.evictions == 1
            assert reg.get("a") is a

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SessionRegistry(base_config(), capacity=0)

    def test_metrics_shape(self):
        with SessionRegistry(base_config()) as reg:
            reg.get("a")
            m = reg.metrics()
            assert m["live"] == 1 and "a" in m["tenants"]
            assert "hom_cache" in m["tenants"]["a"]


# ----------------------------------------------------------------------
# Job manager
# ----------------------------------------------------------------------


class TestJobManager:
    def manager(self, config=None, store=None):
        registry = SessionRegistry(config or base_config())
        return JobManager(registry, store=store)

    def test_validate_payload_rejects_bad_requests(self):
        with pytest.raises(wire.WireError):
            validate_payload("frobnicate", {})
        with pytest.raises(wire.WireError):
            validate_payload("decide", {})
        with pytest.raises(wire.WireError):
            validate_payload("evaluate", {"query": sjson(QUERY)})
        with pytest.raises(wire.WireError):
            validate_payload("screen", {"queries": [], "instances": []})

    def test_decide_evaluate_probe_screen_lifecycle(self):
        mgr = self.manager()
        try:
            jobs = {
                "decide": mgr.submit(
                    "decide", {"query": sjson(zoo.q5()), "probe_depth": 2}
                ),
                "evaluate": mgr.submit(
                    "evaluate",
                    {
                        "query": sjson(QUERY),
                        "data": sjson(FAMILY[0]),
                        "semiring": "count",
                    },
                ),
                "probe": mgr.submit(
                    "probe", {"query": sjson(zoo.q4()), "probe_depth": 2}
                ),
                "screen": mgr.submit("screen", screen_payload()),
            }
            for kind, job in jobs.items():
                assert job.wait(60), kind
                assert job.status == "done", (kind, job.error)
            assert jobs["decide"].result["bounded"] is True
            assert jobs["evaluate"].result["value"] == 1
            assert jobs["probe"].result["verdict"]
            matrix = jobs["screen"].result["matrix"]
            assert len(matrix) == 1 and len(matrix[0]) == len(FAMILY)
            assert all(isinstance(a, bool) for a in matrix[0])
            # screen emitted completion-ordered shard events that
            # jointly cover the family exactly once
            spans = sorted(
                (e["start"], e["stop"]) for e in jobs["screen"].events
            )
            assert spans[0][0] == 0
            assert spans[-1][1] == len(FAMILY)
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        finally:
            mgr.close()

    def test_failed_job_isolates_error(self):
        mgr = self.manager()
        try:
            # q1 has two solitary F nodes: OneCQ.from_structure raises
            job = mgr.submit("probe", {"query": sjson(zoo.q1())})
            assert job.wait(30)
            assert job.status == "failed"
            assert "ValueError" in job.error
            assert mgr.metrics()["failed"] == 1
        finally:
            mgr.close()

    def test_tenant_cap_queues_not_rejects(self):
        mgr = self.manager(
            base_config(service_tenant_jobs=1, service_threads=4)
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            j1 = mgr.submit("decide", {"query": sjson(QUERY)})
            j2 = mgr.submit("decide", {"query": sjson(QUERY)})
            deadline = time.monotonic() + 5
            while j1.status != "running" and time.monotonic() < deadline:
                time.sleep(0.01)
            assert j1.status == "running"
            assert j2.status == "queued"  # capped, not rejected
            gate.set()
            assert j1.wait(10) and j2.wait(10)
            assert j1.status == j2.status == "done"
        finally:
            gate.set()
            mgr.close()

    def test_backlog_overflow_rejects_with_admission_error(self):
        mgr = self.manager(
            base_config(service_queue_depth=1, service_threads=1)
        )
        gate = threading.Event()
        mgr._execute = lambda job: (gate.wait(10), {})[1]
        try:
            mgr.submit("decide", {"query": sjson(QUERY)})
            with pytest.raises(AdmissionError):
                mgr.submit("decide", {"query": sjson(QUERY)})
            assert mgr.metrics()["rejected"] == 1
        finally:
            gate.set()
            mgr.close()

    def test_governed_unknown_preserved(self):
        mgr = self.manager(base_config(hom_fuel=1))
        try:
            job = mgr.submit(
                "evaluate",
                {"query": sjson(zoo.q2()), "data": sjson(zoo.d2())},
            )
            assert job.wait(30)
            assert job.status == "done"
            assert job.result["value"] is None
            assert job.result["answer"] == {"unknown": "fuel"}
        finally:
            mgr.close()

    def test_records_persist_and_recover(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        store = DurableStore.open(tmp_path, config.cache_bytes)
        mgr = self.manager(config, store=store)
        try:
            job = mgr.submit("screen", screen_payload())
            assert job.wait(60) and job.status == "done"
            record = store.job_get(job.id)
            assert record["status"] == "done"
            matrix = record["result"]["matrix"]
        finally:
            mgr.close()
        # a fresh manager over the same store serves the settled job
        # and re-enqueues an in-flight one under its original id
        crashed = Job("deadcafe0001", "default", "screen", screen_payload())
        store.job_put(crashed.id, crashed.snapshot())
        mgr2 = self.manager(config, store=store)
        try:
            assert mgr2.recover() == 1
            settled = mgr2.get(job.id)
            assert settled is not None and settled.status == "done"
            assert settled.result["matrix"] == matrix
            resumed = mgr2.get("deadcafe0001")
            assert resumed.wait(60) and resumed.status == "done"
            assert resumed.result["matrix"] == matrix
        finally:
            mgr2.close()
            store.close()


# ----------------------------------------------------------------------
# Session.screen shard hook (the runtime plumbing the service rides)
# ----------------------------------------------------------------------


class TestScreenShardHook:
    def test_on_shard_fires_and_covers(self):
        from repro.session import Session

        spans = []
        with Session(base_config()) as s:
            want = s.screen([QUERY], FAMILY)
            got = s.screen(
                [QUERY],
                FAMILY,
                on_shard=lambda sh: spans.append((sh.start, sh.stop)),
            )
        assert got == want
        spans.sort()
        assert spans[0][0] == 0 and spans[-1][1] == len(FAMILY)
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_on_shard_incompatible_with_stream(self):
        from repro.session import Session

        with Session(base_config()) as s:
            with pytest.raises(ValueError):
                s.screen([QUERY], FAMILY, stream=True, on_shard=print)


# ----------------------------------------------------------------------
# HTTP front
# ----------------------------------------------------------------------


def collect_watch(client, job_id):
    shards, final = [], None
    for event, data in client.watch(job_id):
        if event == "shard":
            shards.append(data)
        else:
            final = data
    return shards, final


class TestServiceHTTP:
    def test_end_to_end(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)

            health = client.healthz()
            assert health["status"] == "ok"

            served = client.config()
            assert served == wire.config_to_json(config)

            record = client.submit("screen", screen_payload())
            assert record["status"] in ("queued", "running", "done")
            assert "payload" not in record

            shards, final = collect_watch(client, record["id"])
            assert final["status"] == "done"
            spans = sorted((s["start"], s["stop"]) for s in shards)
            assert spans[0][0] == 0 and spans[-1][1] == len(FAMILY)
            assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

            got = client.job(record["id"])
            assert got["status"] == "done"
            assert got["progress"] == {
                "done": len(FAMILY),
                "total": len(FAMILY),
            }

            metrics = client.metrics()
            assert metrics["service"]["completed"] == 1
            assert metrics["registry"]["live"] == 1

    def test_error_statuses(self, tmp_path):
        with ServiceServer(base_config(cache_dir=str(tmp_path))) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as exc:
                client.job("nope")
            assert exc.value.status == 404
            with pytest.raises(ServiceError) as exc:
                client.submit("frobnicate", {})
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client.submit("decide", {})
            assert exc.value.status == 400
            with pytest.raises(ServiceError) as exc:
                client._request("GET", "/nope")
            assert exc.value.status == 404

    def test_backlog_overflow_is_429(self, tmp_path):
        config = base_config(
            cache_dir=str(tmp_path), service_queue_depth=0
        )
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            with pytest.raises(ServiceError) as exc:
                client.submit("decide", {"query": sjson(QUERY)})
            assert exc.value.status == 429

    def test_unknown_survives_the_wire(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path), hom_fuel=1)
        with ServiceServer(config) as server:
            client = ServiceClient(server.host, server.port)
            record = client.submit(
                "evaluate",
                {"query": sjson(zoo.q2()), "data": sjson(zoo.d2())},
            )
            final = client.wait(record["id"])
            assert final["status"] == "done"
            assert final["result"]["answer"] == {"unknown": "fuel"}
            decoded = wire.answer_from_json(final["result"]["answer"])
            assert isinstance(decoded, Answer) and not decoded.known

    def test_restart_recovers_jobs_from_store(self, tmp_path):
        config = base_config(cache_dir=str(tmp_path))
        payload = screen_payload()
        with ServiceServer(config) as first:
            client = ServiceClient(first.host, first.port)
            record = client.submit("screen", payload)
            done = client.wait(record["id"])
            matrix = done["result"]["matrix"]
        # simulate a crash with an in-flight job left in the store
        store = DurableStore.open(tmp_path, config.cache_bytes)
        crashed = Job("deadcafe0002", "default", "screen", payload)
        store.job_put(crashed.id, crashed.snapshot())
        store.close()
        with ServiceServer(config) as second:
            client = ServiceClient(second.host, second.port)
            # the settled job is served from its record, SSE included
            served = client.job(record["id"])
            assert served["status"] == "done"
            assert served["result"]["matrix"] == matrix
            shards, final = collect_watch(client, record["id"])
            assert final["status"] == "done" and shards
            # the in-flight job re-ran (from checkpoints) to the same
            # matrix under its original id
            resumed = client.wait("deadcafe0002")
            assert resumed["status"] == "done"
            assert resumed["result"]["matrix"] == matrix
            assert client.metrics()["service"]["recovered"] == 1


class TestJobNamespaceHelpers:
    def test_job_roundtrip_and_delete(self, tmp_path):
        store = DurableStore.open(tmp_path, 1 << 20)
        assert store.job_get("j1") is None
        store.job_put("j1", {"status": "queued"})
        store.job_put("j2", {"status": "done"})
        assert store.job_get("j1") == {"status": "queued"}
        assert set(store.job_list()) == {"j1", "j2"}
        store.job_delete("j1")
        store.job_delete("j1")  # idempotent
        assert store.job_get("j1") is None
        assert set(store.job_list()) == {"j2"}
        # job rows live in their own namespace
        assert JOB_NS in dict(store.stats().namespaces)
        store.close()
