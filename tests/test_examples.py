"""The example scripts stay runnable against the public API.

The quick examples are executed in-process (their ``main()`` is
importable); the heavyweight walkthroughs (`lambda_dichotomy`,
`atm_reduction_demo`) are exercised by their own subsystem tests and
benchmarks, so here we only check they import and expose ``main``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestQuickExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "certain answer" in out
        assert "bounded" in out

    def test_schema_org_bridge_runs(self, capsys):
        load_example("schema_org_bridge").main()
        out = capsys.readouterr().out
        assert "30/30" in out  # Proposition 5 agreement on every sample

    def test_classify_zoo_runs(self, capsys):
        load_example("classify_ditree_zoo").main()
        out = capsys.readouterr().out
        assert "q8" in out
        assert "Sigma unbounded" in out or "unbounded-evidence" in out


class TestHeavyExamplesImportable:
    @pytest.mark.parametrize(
        "name", ["lambda_dichotomy", "atm_reduction_demo"]
    )
    def test_has_main(self, name):
        module = load_example(name)
        assert callable(module.main)
