"""Unit tests for the monadic datalog engine."""

import pytest

from repro.core import (
    GOAL,
    Program,
    StructureBuilder,
    certain_answers,
    evaluate,
    evaluate_bounded,
    goal_holds,
    make_rule,
)
from repro.core.structure import R, Structure, UnaryFact


def reachability_program() -> Program:
    """``Reach(x) <- Start(x)``; ``Reach(y) <- Reach(x), E(x, y)``."""
    return Program(
        (
            make_rule("Reach", "x", unary=[("Start", "x")]),
            make_rule(
                "Reach",
                "y",
                unary=[("Reach", "x")],
                binary=[("E", "x", "y")],
            ),
        )
    )


def chain(n: int, start: int = 0) -> Structure:
    b = StructureBuilder()
    b.add_node(start, "Start")
    for i in range(n):
        b.add_edge(i, i + 1, "E")
    return b.build()


class TestRuleValidation:
    def test_head_var_must_be_in_body(self):
        with pytest.raises(ValueError):
            make_rule("P", "z", unary=[("T", "x")])

    def test_goal_rule_allows_none_head_var(self):
        rule = make_rule(GOAL, None, unary=[("T", "x")])
        assert rule.head_var is None

    def test_idb_must_be_monadic(self):
        rules = (
            make_rule("P", "x", unary=[("T", "x")]),
            make_rule("Q", "x", binary=[("P", "x", "y")]),
        )
        with pytest.raises(ValueError):
            Program(rules)

    def test_describe_round_trips_atoms(self):
        rule = make_rule(
            "P", "x", unary=[("A", "x")], binary=[(R, "y", "x")]
        )
        text = rule.describe()
        assert "P(x)" in text and "A(x)" in text and "R(y, x)" in text


class TestProgramIntrospection:
    def test_idb_edb_split(self):
        prog = reachability_program()
        assert prog.idb_predicates == {"Reach"}
        assert prog.edb_predicates == {"Start", "E"}

    def test_recursive_rules_and_sirup(self):
        prog = reachability_program()
        assert len(prog.recursive_rules()) == 1
        assert prog.is_sirup()

    def test_non_sirup(self):
        prog = Program(
            (
                make_rule("P", "x", unary=[("T", "x")]),
                make_rule("P", "x", unary=[("P", "y")], binary=[("E", "x", "y")]),
                make_rule("P", "x", unary=[("P", "y")], binary=[("E", "y", "x")]),
            )
        )
        assert not prog.is_sirup()

    def test_program_describe(self):
        assert "Reach" in reachability_program().describe()


class TestEvaluation:
    def test_linear_chain_reachability(self):
        prog = reachability_program()
        answers = certain_answers(prog, chain(5), "Reach")
        assert answers == {0, 1, 2, 3, 4, 5}

    def test_unreachable_component(self):
        b = StructureBuilder()
        b.add_node(0, "Start")
        b.add_edge(0, 1, "E")
        b.add_edge(5, 6, "E")
        answers = certain_answers(reachability_program(), b.build(), "Reach")
        assert answers == {0, 1}

    def test_cycle_terminates(self):
        b = StructureBuilder()
        b.add_node(0, "Start")
        b.add_edge(0, 1, "E")
        b.add_edge(1, 0, "E")
        answers = certain_answers(reachability_program(), b.build(), "Reach")
        assert answers == {0, 1}

    def test_goal_rule_fires(self):
        prog = Program(
            (
                make_rule("Reach", "x", unary=[("Start", "x")]),
                make_rule(
                    "Reach",
                    "y",
                    unary=[("Reach", "x")],
                    binary=[("E", "x", "y")],
                ),
                make_rule(GOAL, None, unary=[("Reach", "x"), ("End", "x")]),
            )
        )
        data = chain(3).relabel_node(3, add=["End"])
        assert goal_holds(prog, data)
        data_no = chain(3).relabel_node(3, add=["Elsewhere"])
        assert not goal_holds(prog, data_no)

    def test_idb_facts_in_data_seed_evaluation(self):
        prog = Program(
            (
                make_rule(
                    "Reach",
                    "y",
                    unary=[("Reach", "x")],
                    binary=[("E", "x", "y")],
                ),
            )
        )
        b = StructureBuilder()
        b.add_node(0, "Reach")
        b.add_edge(0, 1, "E")
        answers = certain_answers(prog, b.build(), "Reach")
        assert answers == {0, 1}

    def test_rounds_reported(self):
        result = evaluate(reachability_program(), chain(6))
        assert result.rounds >= 6

    def test_holds_accessors(self):
        result = evaluate(reachability_program(), chain(2))
        assert result.holds("Reach", 2)
        assert not result.holds("Reach", 99)
        assert not result.holds(GOAL)

    def test_empty_data(self):
        result = evaluate(reachability_program(), Structure())
        assert result.facts == frozenset()


class TestBoundedEvaluation:
    def test_truncation_limits_depth(self):
        prog = reachability_program()
        partial = evaluate_bounded(prog, chain(10), max_rounds=3)
        full = evaluate(prog, chain(10))
        assert len(partial.facts) < len(full.facts)

    def test_bounded_eval_matches_when_enough_rounds(self):
        prog = reachability_program()
        result = evaluate_bounded(prog, chain(4), max_rounds=50)
        assert result.answers("Reach") == {0, 1, 2, 3, 4}


class TestSemiNaiveAgainstNaive:
    def _naive(self, prog: Program, data: Structure):
        """Reference: naive fixpoint recomputing everything each round."""
        from repro.core.homomorphism import iter_homomorphisms

        derived: set[UnaryFact] = set()
        goals: set[str] = set()
        changed = True
        while changed:
            changed = False
            instance = Structure(
                data.nodes,
                data.unary_facts | frozenset(derived),
                data.binary_facts,
            )
            for rule in prog.rules:
                for hom in iter_homomorphisms(rule.body, instance):
                    if rule.head_var is None:
                        if rule.head_pred not in goals:
                            goals.add(rule.head_pred)
                            changed = True
                    else:
                        fact = UnaryFact(rule.head_pred, hom[rule.head_var])
                        if fact not in derived and fact not in data.unary_facts:
                            derived.add(fact)
                            changed = True
        return frozenset(derived), frozenset(goals)

    def test_matches_naive_on_branching_graph(self):
        b = StructureBuilder()
        b.add_node(0, "Start")
        for src, dst in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 1)]:
            b.add_edge(src, dst, "E")
        data = b.build()
        prog = reachability_program()
        result = evaluate(prog, data)
        naive_facts, naive_goals = self._naive(prog, data)
        assert result.facts == naive_facts
        assert result.goals == naive_goals
