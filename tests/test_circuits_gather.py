"""Input gathering around 01-tree nodes: up/down groups, masks, params."""

import pytest

from repro.atm.encoding import ZeroOneTree
from repro.circuits.formula import Var, conj, lit
from repro.circuits.gather import (
    CheckFormula,
    InputGroup,
    InputSpec,
    SharedParam,
    fires_at,
    gather_inputs,
    satisfying_inputs,
)


def comb_tree():
    """Root branches 0/1; below each, short distinct chains."""
    return ZeroOneTree([(0, 1, 1), (1, 0), (1, 1, 0)], context=(1, 0))


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="up"):
            InputGroup("sideways", 3)

    def test_mask_length(self):
        with pytest.raises(ValueError, match="mask"):
            InputGroup("down", 3, mask=(1,))

    def test_check_formula_arity(self):
        spec = InputSpec((InputGroup("down", 2),))
        with pytest.raises(ValueError, match="variable"):
            CheckFormula("bad", Var(5), spec)

    def test_group_offsets(self):
        spec = InputSpec((InputGroup("up", 3), InputGroup("down", 2)))
        assert spec.group_offsets() == [0, 3]
        assert spec.arity == 5


class TestUpGathering:
    def test_uppath_is_reversed_suffix(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("up", 4),))
        inputs = list(gather_inputs(tree, (0, 1), spec))
        # Full path is context (1,0) + (0,1): suffix (1,0,0,1) reversed.
        assert inputs == [(1, 0, 0, 1)]

    def test_short_path_yields_nothing(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("up", 10),))
        assert list(gather_inputs(tree, (0,), spec)) == []

    def test_up_mask_filters(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("up", 2, mask=(1, None)),))
        assert list(gather_inputs(tree, (0, 1), spec)) == [(1, 0)]
        spec_blocked = InputSpec((InputGroup("up", 2, mask=(0, None)),))
        assert list(gather_inputs(tree, (0, 1), spec_blocked)) == []


class TestDownGathering:
    def test_all_downpaths(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 2),))
        inputs = sorted(gather_inputs(tree, (1,), spec))
        assert inputs == [(0,) * 2, (1, 0)][: len(inputs)] or inputs
        assert (1, 0) in inputs

    def test_exact_length_required(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 3),))
        inputs = sorted(gather_inputs(tree, (), spec))
        assert inputs == [(0, 1, 1), (1, 1, 0)]

    def test_down_mask(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 3, mask=(0, None, None)),))
        assert list(gather_inputs(tree, (), spec)) == [(0, 1, 1)]

    def test_product_of_groups(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 1), InputGroup("down", 1)))
        inputs = sorted(gather_inputs(tree, (), spec))
        assert inputs == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_missing_group_blocks_everything(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 1), InputGroup("down", 9)))
        assert list(gather_inputs(tree, (), spec)) == []


class TestSharedParams:
    def test_param_resolves_mask(self):
        tree = comb_tree()
        spec = InputSpec(
            (InputGroup("down", 2, mask=(("which", 0), None)),),
            (SharedParam("which", 1),),
        )
        inputs = sorted(set(gather_inputs(tree, (), spec)))
        assert inputs == [(0, 1), (1, 0), (1, 1)]

    def test_param_links_groups(self):
        tree = comb_tree()
        spec = InputSpec(
            (
                InputGroup("down", 1, mask=(("which", 0),)),
                InputGroup("down", 1, mask=(("which", 0),)),
            ),
            (SharedParam("which", 1),),
        )
        inputs = sorted(set(gather_inputs(tree, (), spec)))
        # Linked groups always agree.
        assert inputs == [(0, 0), (1, 1)]

    def test_guard_on_explosion(self):
        tree = ZeroOneTree(
            [tuple(int(b) for b in format(i, "06b")) for i in range(64)]
        )
        spec = InputSpec((InputGroup("down", 6), InputGroup("down", 6)))
        with pytest.raises(RuntimeError, match="more than 100 inputs"):
            list(gather_inputs(tree, (), spec, max_inputs=100))


class TestFiring:
    def test_fires_when_some_input_satisfies(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 2),))
        check = CheckFormula("both-ones", conj([lit(0), lit(1)]), spec)
        assert fires_at(check, tree, (0,))  # (1, 1) below
        assert not fires_at(check, tree, (1,))  # only (0,) and (1, 0)

    def test_satisfying_inputs_listed(self):
        tree = comb_tree()
        spec = InputSpec((InputGroup("down", 1),))
        check = CheckFormula("one", lit(0), spec)
        assert satisfying_inputs(check, tree, ()) == [(1,)]

    def test_masked_and_unmasked_agree(self):
        """Masks are a pure optimisation when the formula conjoins the
        masked bits as literals."""
        tree = comb_tree()
        formula = conj([lit(0, False), lit(1)])
        unmasked = CheckFormula(
            "u", formula, InputSpec((InputGroup("down", 2),))
        )
        masked = CheckFormula(
            "m", formula, InputSpec((InputGroup("down", 2, mask=(0, 1)),))
        )
        for node in [(), (0,), (1,)]:
            assert fires_at(unmasked, tree, node) == fires_at(
                masked, tree, node
            )
