"""Alternating Turing machines: normal form, runs, computation trees."""

import pytest

from repro.atm.machine import (
    ATM,
    Action,
    Configuration,
    accepts,
    computation_space,
    find_accepting_tree,
    initial_configuration,
    iter_computation_trees,
    successors,
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)


class TestValidation:
    def test_toy_machines_validate(self):
        for machine in (
            toy_accept_machine(),
            toy_reject_machine(),
            toy_alternation_machine(),
        ):
            assert machine.q_init in machine.states

    def test_blank_must_be_in_alphabet(self):
        with pytest.raises(ValueError, match="blank"):
            ATM(
                states=("q", "acc", "rej"),
                alphabet=("0",),
                blank="_",
                delta={},
                mode={"q": "or", "acc": "or", "rej": "or"},
                q_init="q",
                q_accept="acc",
                q_reject="rej",
            )

    def test_halting_states_cannot_move(self):
        base = toy_accept_machine()
        delta = dict(base.delta)
        delta[("acc", "0")] = (
            Action("q_or", "0", 0),
            Action("q_or", "0", 0),
        )
        with pytest.raises(ValueError, match="halting"):
            ATM(
                states=base.states,
                alphabet=base.alphabet,
                blank=base.blank,
                delta=delta,
                mode=dict(base.mode),
                q_init=base.q_init,
                q_accept=base.q_accept,
                q_reject=base.q_reject,
            )

    def test_modes_must_alternate(self):
        base = toy_accept_machine()
        delta = dict(base.delta)
        # q_or -> q_or keeps the same mode without halting: invalid.
        delta[("q_or", "0")] = (
            Action("q_or", "0", 0),
            Action("q_or", "0", 0),
        )
        with pytest.raises(ValueError, match="alternate"):
            ATM(
                states=base.states,
                alphabet=base.alphabet,
                blank=base.blank,
                delta=delta,
                mode=dict(base.mode),
                q_init=base.q_init,
                q_accept=base.q_accept,
                q_reject=base.q_reject,
            )

    def test_action_move_range(self):
        with pytest.raises(ValueError, match="move"):
            Action("q", "0", 2)


class TestConfigurations:
    def test_initial_configuration_pads_blanks(self):
        machine = toy_accept_machine()
        config = initial_configuration(machine, "10", 4)
        assert config.tape == ("1", "0", "_", "_")
        assert config.head == 0
        assert config.state == machine.q_init

    def test_initial_configuration_rejects_long_word(self):
        machine = toy_accept_machine()
        with pytest.raises(ValueError, match="exceeds"):
            initial_configuration(machine, "10101", 4)

    def test_head_clamped_at_boundaries(self):
        config = Configuration("q", 0, ("0", "1"))
        moved = config.write_and_move(Action("q2", "1", -1))
        assert moved.head == 0
        assert moved.tape == ("1", "1")

    def test_successors_of_halting_state_empty(self):
        machine = toy_accept_machine()
        config = Configuration("acc", 0, ("0", "0"))
        assert successors(machine, config) == ()

    def test_successors_are_binary(self):
        machine = toy_accept_machine()
        config = initial_configuration(machine, "1", 2)
        assert len(successors(machine, config)) == 2

    def test_describe_marks_head(self):
        config = Configuration("q", 1, ("0", "1", "0"))
        assert "[1]" in config.describe()


class TestComputationSpace:
    def test_space_counts_all_branches(self):
        machine = toy_accept_machine()
        space = computation_space(machine, "1", 2, 8)
        # Two levels of binary branching then halting leaves.
        assert space.depth() == 2
        assert space.count() == 1 + 2 + 4

    def test_space_respects_depth_budget(self):
        machine = toy_accept_machine()
        space = computation_space(machine, "1", 2, 1)
        assert space.depth() == 1


class TestComputationTrees:
    def test_or_nodes_pick_one_child(self):
        machine = toy_accept_machine()
        trees = list(iter_computation_trees(machine, "1", 2, 8))
        # OR root has 2 choices; the AND level fixes both children.
        assert len(trees) == 2
        for tree in trees:
            assert len(tree.children) == 1

    def test_leaves_are_halting(self):
        machine = toy_reject_machine()
        for tree in iter_computation_trees(machine, "0", 2, 8):
            for leaf in tree.leaves():
                assert machine.is_halting(leaf.state)

    def test_reject_machine_trees_all_rejecting(self):
        machine = toy_reject_machine()
        for tree in iter_computation_trees(machine, "1", 2, 8):
            assert tree.is_rejecting(machine)

    def test_accept_machine_trees_all_accepting(self):
        machine = toy_accept_machine()
        for tree in iter_computation_trees(machine, "1", 2, 8):
            assert not tree.is_rejecting(machine)

    def test_or_configurations_enumeration(self):
        machine = toy_accept_machine()
        tree = next(iter_computation_trees(machine, "1", 2, 8))
        ors = list(tree.or_configurations())
        assert ors[0].state == machine.q_init
        assert all(machine.mode[c.state] == "or" for c in ors)

    def test_limit_parameter(self):
        machine = toy_accept_machine()
        trees = list(iter_computation_trees(machine, "1", 2, 8, limit=1))
        assert len(trees) == 1


class TestAcceptance:
    def test_accept_machine_accepts(self):
        assert accepts(toy_accept_machine(), "0", 2, 16)

    def test_reject_machine_rejects(self):
        assert not accepts(toy_reject_machine(), "0", 2, 16)

    def test_alternation_machine_depends_on_input(self):
        machine = toy_alternation_machine()
        assert accepts(machine, "1", 2, 16)
        assert not accepts(machine, "0", 2, 16)
        assert not accepts(machine, "", 2, 16)

    def test_accepting_tree_is_accepting(self):
        machine = toy_alternation_machine()
        tree = find_accepting_tree(machine, "1", 2, 16)
        assert tree is not None
        assert not tree.is_rejecting(machine)

    def test_accepting_tree_none_when_rejecting(self):
        assert find_accepting_tree(toy_reject_machine(), "1", 2, 16) is None

    def test_accepting_tree_matches_enumeration(self):
        machine = toy_alternation_machine()
        enumerated = [
            t
            for t in iter_computation_trees(machine, "1", 2, 16)
            if not t.is_rejecting(machine)
        ]
        assert enumerated
        found = find_accepting_tree(machine, "1", 2, 16)
        assert found is not None
