"""The shard executor: wire format round-trips and parallel batch paths.

The wire format must reproduce structures *exactly* — equal fact sets,
equal fingerprints, the same interning order, and indexes that rebuild
to the same masks in the receiving process.  The parallel entry points
must agree with their serial counterparts bit for bit, fall back to the
serial fast path below the batch threshold, and keep the rewired
consumers (``ucq_certain_answers``, the boundedness probe) exact.
"""

import pickle

import pytest

from repro.core import OneCQ, build_cactus, full_shape, path_structure
from repro.core import runtime
from repro.core.homengine import covers_any, evaluate_batch
from repro.core.runtime import (
    configure_pool,
    from_wire,
    parallel_covers_any,
    parallel_evaluate_batch,
    parallel_screen,
    pool_info,
    shutdown_pool,
    to_wire,
)
from repro.core.structure import BitsetIndex
from repro.workloads import instance_family, random_instance


@pytest.fixture
def small_pool():
    """A 2-worker pool with a tiny threshold, restored afterwards."""
    info = pool_info()
    configure_pool(workers=2, min_batch=4)
    yield
    shutdown_pool()
    configure_pool(workers=info.workers, min_batch=info.min_batch)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


class TestWireFormat:
    @pytest.mark.parametrize("seed", range(10))
    def test_round_trip_preserves_everything(self, seed):
        s = random_instance(10, 18, seed, preds=("R", "S"))
        _ = s.fingerprint  # force, to compare against the rebuilt one
        r = from_wire(pickle.loads(pickle.dumps(to_wire(s))))
        assert r == s
        assert r.fingerprint == s.fingerprint
        assert r.node_order == s.node_order
        assert dict(r.node_index) == dict(s.node_index)

    def test_rebuilt_indexes_equal(self):
        s = random_instance(8, 14, seed=4, preds=("R", "S"))
        r = from_wire(to_wire(s))
        mine, theirs = r.bitset_index, s.bitset_index
        rebuilt = BitsetIndex(s)
        for idx in (mine, theirs):
            assert idx.nodes == rebuilt.nodes
            assert idx.succ == rebuilt.succ
            assert idx.pred == rebuilt.pred
            assert idx.label_nodes == rebuilt.label_nodes
            assert idx.has_out == rebuilt.has_out
            assert idx.has_in == rebuilt.has_in

    def test_composite_cactus_nodes_survive(self):
        # Cactus nodes are (path, variable) tuples — the wire format
        # must carry them and keep the interning order (and with it the
        # fingerprint) stable across the hop.
        one_cq = OneCQ.from_structure(path_structure(["T", "T", "F"]))
        cactus = build_cactus(one_cq, full_shape(one_cq.span, 2))
        s = cactus.structure
        r = from_wire(pickle.loads(pickle.dumps(to_wire(s))))
        assert r == s
        assert r.fingerprint == s.fingerprint
        assert r.node_order == s.node_order

    def test_empty_structure(self):
        from repro.core import Structure

        r = from_wire(to_wire(Structure()))
        assert len(r.nodes) == 0 and r.size() == 0


# ----------------------------------------------------------------------
# Parallel batch entry points
# ----------------------------------------------------------------------


class TestParallelEvaluateBatch:
    def test_matches_serial(self, small_pool):
        q = path_structure(["T", "", "F"])
        family = instance_family(24, 20, 40, seed=5)
        assert parallel_evaluate_batch(q, family) == evaluate_batch(q, family)

    def test_order_preserved(self, small_pool):
        q = path_structure(["T", "F"])
        yes = path_structure(["T", "F"])
        no = path_structure(["F", "T"])
        family = [yes, no] * 8
        assert parallel_evaluate_batch(q, family) == [True, False] * 8

    def test_small_batch_serial_fallback(self, small_pool):
        shutdown_pool()
        q = path_structure(["T", "F"])
        family = instance_family(3, 6, 8, seed=1)  # below min_batch=4
        assert parallel_evaluate_batch(q, family) == evaluate_batch(q, family)
        assert not pool_info().running  # no pool was spawned for it

    def test_workers_one_disables_parallelism(self, small_pool):
        shutdown_pool()
        q = path_structure(["T", "F"])
        family = instance_family(12, 6, 8, seed=2)
        result = parallel_evaluate_batch(q, family, workers=1)
        assert result == evaluate_batch(q, family)
        assert not pool_info().running

    def test_empty_batch(self, small_pool):
        assert parallel_evaluate_batch(path_structure(["T"]), []) == []


class TestParallelScreen:
    def test_matches_per_query_serial(self, small_pool):
        queries = [
            path_structure(["T", "F"]),
            path_structure(["T", "", "F"]),
            path_structure(["", ""]),
        ]
        family = instance_family(16, 15, 30, seed=8)
        sharded = parallel_screen(queries, family)
        assert sharded == [evaluate_batch(q, family) for q in queries]

    def test_serial_fallback_below_threshold(self, small_pool):
        shutdown_pool()
        queries = [path_structure(["T", "F"])]
        family = instance_family(3, 6, 8, seed=4)
        assert parallel_screen(queries, family) == [
            evaluate_batch(queries[0], family)
        ]
        assert not pool_info().running

    def test_empty_query_pool(self, small_pool):
        assert parallel_screen([], instance_family(8, 5, 6, seed=1)) == []


class TestParallelUcqAnswers:
    def test_matches_serial_or_of_disjuncts(self, small_pool):
        from repro.core.runtime import parallel_ucq_answers

        disjuncts = [
            path_structure(["T", "F"]),
            path_structure(["T", "", "F"]),
        ]
        family = instance_family(16, 12, 24, seed=6)
        sharded = parallel_ucq_answers(disjuncts, family)
        assert sharded is not None  # pool up, batch over threshold
        per_disjunct = [evaluate_batch(d, family) for d in disjuncts]
        expected = [
            any(col[i] for col in per_disjunct) for i in range(len(family))
        ]
        assert sharded == expected

    def test_returns_none_below_threshold(self, small_pool):
        from repro.core.runtime import parallel_ucq_answers

        shutdown_pool()
        disjuncts = [path_structure(["T", "F"])]
        family = instance_family(3, 6, 8, seed=2)
        assert parallel_ucq_answers(disjuncts, family) is None
        assert not pool_info().running

    def test_returns_none_for_empty_inputs(self, small_pool):
        from repro.core.runtime import parallel_ucq_answers

        assert parallel_ucq_answers([], instance_family(8, 5, 6, 1)) is None
        assert parallel_ucq_answers([path_structure(["T"])], []) is None


class TestParallelCoversAny:
    def test_matches_serial(self, small_pool):
        target = random_instance(30, 70, seed=11)
        sources = [random_instance(3, 4, seed=s) for s in range(16)]
        assert parallel_covers_any(target, sources) == covers_any(
            target, sources
        )

    def test_negative_batch(self, small_pool):
        target = path_structure(["", ""])  # unlabelled edge
        sources = [path_structure(["T"], prefix=f"q{i}") for i in range(12)]
        assert not parallel_covers_any(target, sources)

    def test_seed_pair_conventions(self, small_pool):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        assert parallel_covers_any(d, [(q, {"q0": "d1"})])
        assert not parallel_covers_any(d, [(q, {"q0": "d2"})])
        assert parallel_covers_any(
            d, [q, q], seeds=[{"q0": "d2"}, {"q0": "d0"}]
        )
        with pytest.raises(ValueError):
            parallel_covers_any(d, [q, q, q], seeds=[None])
        with pytest.raises(ValueError):
            parallel_covers_any(d, [(q, None)], seeds=[None])

    def test_seeds_cross_process(self, small_pool):
        # Force the sharded path (batch >= min_batch) with seeds that
        # only admit one specific source: the hit must be found in a
        # worker and reported back.
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        pairs = [(q, {"q0": "d2"})] * 7 + [(q, {"q0": "d0"})]
        assert parallel_covers_any(d, pairs)
        assert not parallel_covers_any(d, [(q, {"q0": "d2"})] * 8)


class TestRewiredConsumers:
    def test_ucq_certain_answers_parallel_matches_serial(self, small_pool):
        from repro.core.boundedness import (
            ucq_certain_answer,
            ucq_certain_answers,
            ucq_rewriting,
        )

        one_cq = OneCQ.from_structure(path_structure(["T", "T", "F"]))
        ucq = ucq_rewriting(one_cq, 2)
        family = instance_family(16, 5, 7, seed=9)
        batch = ucq_certain_answers(ucq, family)
        single = [ucq_certain_answer(ucq, data) for data in family]
        assert batch == single

    def test_probe_boundedness_unchanged(self, small_pool):
        from repro import zoo
        from repro.core.boundedness import Verdict, probe_boundedness

        probe = probe_boundedness(
            OneCQ.from_structure(zoo.q5()), probe_depth=3
        )
        assert probe.verdict is Verdict.BOUNDED and probe.depth == 1

    def test_screen_zoo_sweep(self, small_pool):
        from repro.core.boundedness import ucq_certain_answers, ucq_rewriting
        from repro.zoo import screen_zoo

        family = instance_family(8, 8, 14, seed=2)
        rows = {row.name: row for row in screen_zoo(family, probe_depth=3)}
        assert rows["q1"].decision is None  # two solitary Fs: not a 1-CQ
        assert rows["q2"].answers is None  # unbounded: no certified depth
        q5 = rows["q5"]
        assert q5.covering_depth == 1
        one_cq = OneCQ.from_structure(__import__("repro").zoo.q5())
        expected = ucq_certain_answers(ucq_rewriting(one_cq, 1), family)
        assert list(q5.answers) == expected


class TestPoolManagement:
    def test_configure_and_info(self):
        info = pool_info()
        try:
            configure_pool(workers=3, min_batch=7)
            assert pool_info().workers == 3
            assert pool_info().min_batch == 7
        finally:
            shutdown_pool()
            configure_pool(workers=info.workers, min_batch=info.min_batch)

    def test_shutdown_idempotent(self):
        shutdown_pool()
        shutdown_pool()
        assert not pool_info().running
