"""Four-way backend cross-validation: naive / bitset / matrix / decomp.

The ``decomp`` backend (semijoin DP over a tree decomposition of the
query, :mod:`repro.core.decomp`) must enumerate exactly the same
homomorphism sets as the other three backends — across random tree,
cycle and grid queries, random targets, every declarative constraint
(seeds, restrict_image, node_domains, forbid, node_filter), and on
``find``/``has``/``count``/``evaluate_batch``.  The suite also pins the
decomposition builder's width reporting (exact for treewidth <= 2), the
fingerprint plan intern, the probe's delta warm-start (same verdicts as
the batch path), the width-aware ``auto`` routing, and the no-numpy
environment (decomp is pure python).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import structure as structure_mod
from repro.core import decomp
from repro.core.boundedness import probe_boundedness
from repro.core.config import (
    AUTO_DECOMP_MIN_NODES,
    EngineConfig,
    choose_auto_backend,
)
from repro.core.cq import OneCQ
from repro.core.homengine import (
    BACKENDS,
    _count_homomorphisms,
    evaluate_batch,
    find_homomorphism,
    has_homomorphism,
    iter_homomorphisms,
)
from repro.core.homomorphism import is_homomorphism
from repro.core.structure import (
    F,
    Structure,
    StructureBuilder,
    T,
    path_structure,
)
from repro.session import Session
from repro.workloads.generators import (
    instance_family,
    random_ditree_cq,
    random_instance,
)
from repro import zoo


def canon(homs):
    """Order-insensitive canonical form of a hom enumeration."""
    return sorted(
        tuple(sorted(h.items(), key=lambda kv: str(kv[0]))) for h in homs
    )


def four_way(q, d, **kwargs):
    """Canonical enumerations of all four backends, as a dict."""
    return {
        backend: canon(iter_homomorphisms(q, d, backend=backend, **kwargs))
        for backend in BACKENDS
    }


def cycle_query(k, preds=("R",), labels=()):
    b = StructureBuilder()
    for i in range(k):
        b.add_node(i, *([labels[i]] if i < len(labels) and labels[i] else []))
    for i in range(k):
        b.add_edge(i, (i + 1) % k, preds[i % len(preds)])
    return b.build()


def grid_query(rows, cols):
    b = StructureBuilder()
    for r in range(rows):
        for c in range(cols):
            b.add_node((r, c))
            if c:
                b.add_edge((r, c - 1), (r, c))
            if r:
                b.add_edge((r - 1, c), (r, c))
    return b.build()


class TestFourWayCrossValidation:
    def test_backends_registered(self):
        assert BACKENDS == ("naive", "bitset", "matrix", "decomp")

    def test_tree_queries_enumerate_identically(self):
        nonempty = 0
        for seed in range(40):
            q = random_ditree_cq(5, seed) or path_structure(["T", "", "F"])
            d = random_instance(9, 16, seed + 40_000, preds=("R", "S"))
            results = four_way(q, d)
            assert (
                results["naive"] == results["bitset"]
                == results["matrix"] == results["decomp"]
            ), f"backend mismatch at seed {seed}"
            nonempty += bool(results["decomp"])
        assert nonempty > 0

    def test_cycle_and_grid_queries(self):
        """Width-2 (cycles, 2xN grids) and width-3 (3x3 grid) queries
        exercise the relational bag DP rather than the forest fast
        path."""
        queries = [
            cycle_query(3),
            cycle_query(4, preds=("R", "S")),
            cycle_query(5, labels=("T", "", "", "F", "")),
            grid_query(2, 3),
            grid_query(3, 3),
        ]
        nonempty = 0
        for qi, q in enumerate(queries):
            for seed in range(8):
                d = random_instance(8, 26, seed + 11 * qi, preds=("R", "S"))
                results = four_way(q, d)
                assert results["naive"] == results["decomp"], (qi, seed)
                assert results["bitset"] == results["decomp"], (qi, seed)
                nonempty += bool(results["decomp"])
        assert nonempty > 0

    def test_seeded_and_restricted_agree(self):
        for seed in range(10):
            q = random_ditree_cq(4, seed) or path_structure(["", ""])
            d = random_instance(7, 12, seed + 500, preds=("R",))
            some_q = next(iter(sorted(q.nodes, key=str)))
            restrict = frozenset(list(sorted(d.nodes, key=str))[:4])
            for image in sorted(d.nodes, key=str):
                results = four_way(
                    q, d, seed={some_q: image}, restrict_image=restrict
                )
                assert results["naive"] == results["decomp"]

    def test_node_domains_forbid_and_filter_agree(self):
        for seed in range(10):
            q = random_instance(4, 5, seed)
            d = random_instance(7, 11, seed + 900)
            nodes_q = sorted(q.nodes, key=str)
            nodes_d = sorted(d.nodes, key=str)
            constraints = {
                "node_domains": {nodes_q[0]: frozenset(nodes_d[::2])},
                "forbid": frozenset(nodes_d[:2]),
            }
            results = four_way(q, d, **constraints)
            assert results["naive"] == results["decomp"]
            filtered = canon(
                iter_homomorphisms(
                    q,
                    d,
                    node_filter=lambda x, v: v == nodes_d[-1],
                    backend="decomp",
                )
            )
            oracle = canon(
                iter_homomorphisms(
                    q,
                    d,
                    node_filter=lambda x, v: v == nodes_d[-1],
                    backend="naive",
                )
            )
            assert filtered == oracle

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_property_find_has_count_batch_agree(self, seed):
        q = random_instance(4, 6, seed)
        d = random_instance(6, 10, seed + 1)
        verdicts = {
            b: has_homomorphism(q, d, backend=b, use_cache=False)
            for b in BACKENDS
        }
        assert len(set(verdicts.values())) == 1
        counts = {
            b: _count_homomorphisms(q, d, backend=b, use_cache=False)
            for b in BACKENDS
        }
        assert len(set(counts.values())) == 1
        witness = find_homomorphism(q, d, backend="decomp", use_cache=False)
        assert (witness is not None) == verdicts["naive"]
        if witness is not None:
            assert is_homomorphism(q, d, witness)

    def test_evaluate_batch_matches_oracle(self):
        q = path_structure(["T", "", "F"])
        family = instance_family(count=12, n=10, edge_count=20, seed=3)
        assert evaluate_batch(
            q, family, backend="decomp", use_cache=False
        ) == evaluate_batch(q, family, backend="naive", use_cache=False)

    def test_count_is_bag_product_not_enumeration(self):
        """A query with an astronomical hom count must still count
        instantly: 12 independent unlabelled nodes into a 30-node
        target has 30^12 homs, far beyond enumerable."""
        b = StructureBuilder()
        for i in range(12):
            b.add_node(i)
        q = b.build()
        d = random_instance(30, 40, seed=5)
        assert (
            _count_homomorphisms(q, d, backend="decomp", use_cache=False)
            == len(d.nodes) ** 12
        )

    def test_self_loops(self):
        b = StructureBuilder()
        b.add_node("x", "T")
        b.add_edge("x", "x", "R")
        q = b.build()
        b2 = StructureBuilder()
        b2.add_node("a", "T")
        b2.add_edge("a", "a", "R")
        b2.add_node("c", "T")
        b2.add_edge("c", "a", "R")
        d = b2.build()
        results = four_way(q, d)
        assert results["naive"] == results["decomp"]
        assert len(results["decomp"]) == 1

    def test_degenerate_structures(self):
        empty = Structure()
        q = path_structure(["T"])
        assert canon(iter_homomorphisms(empty, q, backend="decomp")) == [()]
        assert canon(iter_homomorphisms(q, empty, backend="decomp")) == []
        assert canon(iter_homomorphisms(empty, empty, backend="decomp")) == [
            ()
        ]


class TestDecomposition:
    def test_path_is_width_1_exact(self):
        td = decomp.tree_decomposition(path_structure([""] * 8))
        assert td.width == 1 and td.exact
        assert decomp.validate_decomposition(path_structure([""] * 8), td) \
            == []

    def test_cycle_is_width_2_exact(self):
        q = cycle_query(5)
        td = decomp.tree_decomposition(q)
        assert td.width == 2 and td.exact
        assert decomp.validate_decomposition(q, td) == []

    def test_two_row_grid_is_width_2_exact(self):
        q = grid_query(2, 4)
        td = decomp.tree_decomposition(q)
        assert td.width == 2 and td.exact

    def test_wide_grid_reports_upper_bound(self):
        q = grid_query(3, 3)
        td = decomp.tree_decomposition(q)
        assert td.width >= 3 and not td.exact  # treewidth of 3x3 is 3
        assert decomp.validate_decomposition(q, td) == []

    def test_random_decompositions_are_valid(self):
        for seed in range(25):
            s = random_instance(8, 14, seed, preds=("R", "S"))
            td = decomp.build_tree_decomposition(s)
            assert decomp.validate_decomposition(s, td) == []

    def test_cached_on_structure(self):
        q = path_structure(["T", "F"])
        assert decomp.tree_decomposition(q) is decomp.tree_decomposition(q)
        assert decomp.query_width(q) == 1


class TestPlanIntern:
    def test_plan_cached_on_structure(self):
        q = path_structure(["T", "", "F"])
        assert decomp.decomp_plan(q) is decomp.decomp_plan(q)

    def test_content_equal_structures_share_one_plan(self):
        """The fingerprint intern is how a compiled plan 'ships' over
        the wire: a worker rebuilding the same query re-finds the plan
        instead of recompiling."""
        from repro.core.runtime import from_wire, to_wire

        q = path_structure(["T", "", "F"])
        plan = decomp.decomp_plan(q)
        rebuilt = from_wire(to_wire(q))
        assert rebuilt is not q
        assert decomp.decomp_plan(rebuilt) is plan

    def test_intern_is_bounded(self):
        occupancy, capacity = decomp.plan_intern_info()
        assert occupancy <= capacity


class TestProbeWarmStart:
    def test_same_verdicts_as_batch_path(self):
        for name in ("q2", "q4", "q5", "q7"):
            cq = OneCQ.from_structure(getattr(zoo, name)())
            with Session(
                EngineConfig(probe_warmstart=True, workers=1)
            ) as warm, Session(
                EngineConfig(probe_warmstart=False, workers=1)
            ) as cold:
                for require_focus in (False, True):
                    a = probe_boundedness(
                        cq, 3, require_focus=require_focus, session=warm
                    )
                    b = probe_boundedness(
                        cq, 3, require_focus=require_focus, session=cold
                    )
                    assert (a.verdict, a.depth, a.uncovered) == (
                        b.verdict, b.depth, b.uncovered,
                    ), (name, require_focus)

    def test_warm_starts_actually_engage(self):
        """On a span-1 chain query the depth loop must answer most
        coverage pairs by delta application, not cold solves."""
        from repro.core import boundedness

        b = StructureBuilder()
        b.add_node("f", F)
        b.add_node("m")
        b.add_edge("f", "m")
        b.add_node("t", T)
        b.add_edge("m", "t")
        cq = OneCQ.from_structure(b.build())
        with Session(EngineConfig(probe_warmstart=True, workers=1)) as s:
            coverage = boundedness._probe_coverage(s, cq)
            assert coverage is not None
            cactuses = sorted(
                s.iter_cactuses(cq, 8), key=lambda c: c.depth
            )
            for d in range(8):
                shallow = [c for c in cactuses if c.depth <= d]
                deep = [c for c in cactuses if c.depth > d]
                for c in deep:
                    coverage.covered_by_any(c, shallow, False)
            assert coverage.warm_hits > coverage.cold_solves

    def test_cyclic_query_uses_relational_tier(self):
        """A width-2 query's cactuses route through the relational
        warm tier and still agree with the batch path."""
        b = StructureBuilder()
        b.add_node("f", F)
        for i in range(3):
            b.add_node(f"c{i}")
        b.add_edge("f", "c0")
        b.add_edge("c0", "c1")
        b.add_edge("c1", "c2")
        b.add_edge("c2", "c0")
        b.add_node("t", T)
        b.add_edge("c0", "t")
        cq = OneCQ.from_structure(b.build())
        with Session(
            EngineConfig(probe_warmstart=True, workers=1)
        ) as warm, Session(
            EngineConfig(probe_warmstart=False, workers=1)
        ) as cold:
            a = probe_boundedness(cq, 3, session=warm)
            b_ = probe_boundedness(cq, 3, session=cold)
            assert (a.verdict, a.depth) == (b_.verdict, b_.depth)

    def test_config_knob_disables_warmstart(self):
        from repro.core import boundedness

        cq = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(probe_warmstart=False)) as s:
            assert boundedness._probe_coverage(s, cq) is None
        with Session(EngineConfig()) as s:
            assert boundedness._probe_coverage(s, cq) is not None

    def test_wide_queries_keep_the_sharded_path(self):
        """Cactuses inherit the query's width, so a width > 2 query
        would route every coverage pair through the serial engine
        fallback — the probe keeps the sharded batch path instead."""
        from repro.core import boundedness

        wide = grid_query(3, 3).extended(
            add_unary=[
                structure_mod.UnaryFact(F, (0, 0)),
                structure_mod.UnaryFact(T, (2, 2)),
            ]
        )
        cq = OneCQ.from_structure(wide)
        with Session(EngineConfig(probe_warmstart=True)) as s:
            assert boundedness._probe_coverage(s, cq) is None

    def test_parallel_atoms_between_one_pair(self):
        """Regression: two atoms between the same variable pair must
        intersect their support masks — a target offering each atom
        only towards *different* nodes admits no homomorphism."""
        b = StructureBuilder()
        b.add_node("x")
        b.add_node("y")
        b.add_edge("x", "y", "R")
        b.add_edge("x", "y", "S")
        q = b.build()
        b2 = StructureBuilder()
        b2.add_edge("a", "b", "R")
        b2.add_edge("a", "c", "S")
        split = b2.build()
        b3 = StructureBuilder()
        b3.add_edge("a", "b", "R")
        b3.add_edge("a", "b", "S")
        joint = b3.build()
        from repro.core.decomp import MaskCoverageState, decomp_plan

        plan = decomp_plan(q)
        assert MaskCoverageState.cold(plan, split, None).covered is False
        assert MaskCoverageState.cold(plan, joint, None).covered is True
        assert not has_homomorphism(q, split, backend="decomp",
                                    use_cache=False)
        assert has_homomorphism(q, joint, backend="decomp",
                                use_cache=False)

    def test_span2_probes_keep_the_batch_path(self):
        """Bushy span >= 2 probes (exponential layers of small
        cactuses) stay on the hom-cached, shardable batch path where
        the constants favour it; the coverage engine is chain-probe
        machinery."""
        from repro.core import boundedness

        with Session(EngineConfig(probe_warmstart=True)) as s:
            assert boundedness._probe_coverage(
                s, OneCQ.from_structure(zoo.q2())
            ) is None

    def test_span2_layers_stay_warm_when_driven_directly(self):
        """The coverage engine itself keeps bushy layers warm (mask
        LRU sized to layer widths + chain seeding via the structure
        registry), should a chain-shaped universe branch."""
        from repro.core.decomp import ProbeCoverage

        cq = OneCQ.from_structure(zoo.q2())
        with Session(EngineConfig(workers=1)) as s:
            coverage = ProbeCoverage(s)
            cactuses = sorted(
                s.iter_cactuses(cq, 2), key=lambda c: c.depth
            )
            for d in range(2):
                shallow = [c for c in cactuses if c.depth <= d]
                deep = [c for c in cactuses if c.depth > d]
                for c in deep:
                    coverage.covered_by_any(c, shallow, False)
            assert coverage.warm_hits > coverage.cold_solves

    def test_probe_answers_flow_through_session_hom_cache(self):
        """A repeated probe on the same session is answered from the
        hom-cache (the coverage engine reads and writes the find-cache
        under the decomp backend key)."""
        cq = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(probe_warmstart=True, workers=1)) as s:
            first = probe_boundedness(cq, 3, session=s)
            hits_before = s.hom_cache_info().hits
            second = probe_boundedness(cq, 3, session=s)
            assert (first.verdict, first.depth) == (
                second.verdict, second.depth,
            )
            assert s.hom_cache_info().hits > hits_before


class TestAutoRouting:
    def test_width_routes_tree_queries_to_decomp(self):
        n = AUTO_DECOMP_MIN_NODES
        assert choose_auto_backend(n, 3 * n, True, query_width=1) == "decomp"
        assert choose_auto_backend(n, 3 * n, False, query_width=0) == "decomp"
        # Dense-and-numpy is the matrix backend's measured home turf:
        # width-1 queries stay off decomp there — but only when the
        # dense path actually exists.
        assert choose_auto_backend(n, 6 * n, True, query_width=1) == "matrix"
        assert choose_auto_backend(n, 6 * n, False, query_width=1) == \
            "decomp"
        # Below the target floor, or for wide queries, the old
        # size/density crossover stands.
        assert choose_auto_backend(n - 1, 3 * n, True, query_width=1) != \
            "decomp"
        assert choose_auto_backend(1000, 8000, True, query_width=2) == \
            "matrix"
        assert choose_auto_backend(1000, 8000, False, query_width=2) == \
            "bitset"
        # No width information: behaviour unchanged.
        assert choose_auto_backend(8, 200, True) == "bitset"

    def test_session_resolves_auto_per_query_shape(self):
        tree_q = path_structure([""] * 6)
        wide_q = grid_query(3, 3)
        big = instance_family(
            count=1, n=AUTO_DECOMP_MIN_NODES + 50, edge_count=450, seed=1
        )[0]
        with Session(EngineConfig(backend="auto")) as s:
            assert s.resolve_backend(None, big, tree_q) == "decomp"
            assert s.resolve_backend(None, big, wide_q) != "decomp"
            small = zoo.q2()
            assert s.resolve_backend(None, small, tree_q) == "bitset"

    def test_auto_answers_match_bitset_on_tree_queries(self):
        q = path_structure([""] * 5)
        family = instance_family(count=4, n=150, edge_count=450, seed=5)
        with Session(EngineConfig(backend="auto")) as auto, Session(
            EngineConfig(backend="bitset")
        ) as bits:
            assert [auto.has_homomorphism(q, d) for d in family] == [
                bits.has_homomorphism(q, d) for d in family
            ]


class TestNumpyFreeEnvironment:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(structure_mod, "_numpy_module", None)
        monkeypatch.setattr(structure_mod, "_numpy_checked", True)

    def test_decomp_is_pure_python(self, no_numpy):
        """The decomp backend (both tiers) never touches numpy."""
        for seed in range(8):
            q = random_ditree_cq(5, seed) or cycle_query(4)
            d = random_instance(8, 14, seed + 77)
            assert canon(
                iter_homomorphisms(q, d, backend="decomp")
            ) == canon(iter_homomorphisms(q, d, backend="naive"))
        q = cycle_query(4)
        d = random_instance(8, 20, seed=2)
        assert canon(iter_homomorphisms(q, d, backend="decomp")) == canon(
            iter_homomorphisms(q, d, backend="naive")
        )

    def test_warm_probe_without_numpy(self, no_numpy):
        cq = OneCQ.from_structure(zoo.q5())
        with Session(
            EngineConfig(probe_warmstart=True, workers=1)
        ) as warm, Session(
            EngineConfig(probe_warmstart=False, workers=1)
        ) as cold:
            a = probe_boundedness(cq, 3, session=warm)
            b = probe_boundedness(cq, 3, session=cold)
            assert (a.verdict, a.depth) == (b.verdict, b.depth)

    def test_auto_routes_to_decomp_without_numpy(self, no_numpy):
        tree_q = path_structure([""] * 6)
        big = instance_family(
            count=1, n=AUTO_DECOMP_MIN_NODES + 50, edge_count=900, seed=1
        )[0]
        with Session(EngineConfig(backend="auto")) as s:
            assert s.resolve_backend(None, big, tree_q) == "decomp"
