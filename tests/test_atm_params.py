"""Encoding parameters and configuration (de)serialisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atm.machine import (
    Configuration,
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)
from repro.atm.params import (
    EncodingParams,
    bits_to_int,
    decode_configuration,
    encode_configuration,
    int_to_bits,
)

MACHINES = {
    "accept": toy_accept_machine,
    "reject": toy_reject_machine,
    "alternation": toy_alternation_machine,
}


def params_for(name: str = "accept", cells: int = 2) -> EncodingParams:
    return EncodingParams.from_machine(MACHINES[name](), cells)


class TestBitHelpers:
    def test_int_to_bits_msb_first(self):
        assert int_to_bits(5, 4) == (0, 1, 0, 1)

    def test_int_to_bits_range_check(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    @given(st.integers(0, 255))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 8)) == value


class TestDerivedSizes:
    def test_cells_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            EncodingParams.from_machine(toy_accept_machine(), 3)

    @pytest.mark.parametrize("cells", [2, 4, 8])
    def test_everything_fits(self, cells):
        params = params_for(cells=cells)
        assert params.n_state_block + params.cells * params.n_gamma < params.seq_len
        assert params.cells == cells
        # Power-of-two alignment invariants used by the formulas.
        assert params.n_gamma & (params.n_gamma - 1) == 0
        assert params.n_state_block & (params.n_state_block - 1) == 0
        assert params.n_state_block >= params.cells * params.n_gamma

    def test_state_and_symbol_codes_fit(self):
        params = params_for("alternation")
        machine = params.machine
        assert len(machine.states) <= 1 << params.n_q
        assert len(machine.alphabet) <= 1 << params.sym_bits
        assert params.sym_bits < params.n_gamma

    def test_cell_offsets_are_cell_starts(self):
        params = params_for(cells=4)
        for i in range(params.cells):
            offset = params.cell_offset(i)
            assert params.is_cell_start(offset)
            assert params.cell_index_of(offset) == i

    def test_non_cell_starts_rejected(self):
        params = params_for()
        assert not params.is_cell_start(params.cell_offset(0) + 1)
        assert not params.is_cell_start(0)
        with pytest.raises(ValueError):
            params.cell_index_of(0)

    def test_cell_index_appears_verbatim_in_address(self):
        """The power-of-two layout puts the cell index at fixed bit
        positions of the address -- the property Step's formulas use."""
        params = params_for(cells=4)
        positions = params.cell_index_bit_positions()
        for index in range(params.cells):
            for offset in range(params.n_gamma):
                address = params.cell_offset(index) + offset
                bits = int_to_bits(address, params.d)
                read = bits_to_int([bits[p] for p in positions])
                assert read == index

    def test_cell_address_bits_fixed_and_free(self):
        params = params_for(cells=4)
        free = params.cell_address_bits(1, None)
        assert free.count(None) == params.p
        fixed = params.cell_address_bits(1, 2)
        assert None not in fixed
        assert bits_to_int([int(b) for b in fixed]) == params.cell_offset(2) + 1


class TestBlocks:
    def test_state_block_roundtrip(self):
        params = params_for("alternation", cells=4)
        for state in params.machine.states:
            for head in range(params.cells):
                block = params.state_block(state, head)
                assert len(block) == params.n_state_block
                assert params.read_state_block(block) == (state, head)

    def test_cell_block_roundtrip(self):
        params = params_for()
        for symbol in params.machine.alphabet:
            block = params.cell_block(symbol)
            assert len(block) == params.n_gamma
            assert params.read_cell_block(block) == symbol

    def test_head_out_of_range(self):
        params = params_for()
        with pytest.raises(ValueError):
            params.state_block("q_or", params.cells)


class TestConfigurationCodec:
    @given(
        st.sampled_from(["q_or", "q_and", "acc", "rej"]),
        st.integers(0, 1),
        st.lists(st.sampled_from(["0", "1", "_"]), min_size=2, max_size=2),
        st.integers(0, 1),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, state, head, tape, parent):
        params = params_for("reject")
        config = Configuration(state, head, tuple(tape))
        bits = encode_configuration(params, config, parent)
        assert len(bits) == params.seq_len
        decoded, decoded_parent = decode_configuration(params, bits)
        assert decoded == config
        assert decoded_parent == parent

    def test_parent_bit_is_last(self):
        params = params_for()
        config = Configuration("q_or", 0, ("0", "1"))
        bits = encode_configuration(params, config, 1)
        assert bits[-1] == 1
        assert params.parent_bit_position == params.seq_len - 1

    def test_wrong_tape_length_rejected(self):
        params = params_for()
        config = Configuration("q_or", 0, ("0", "1", "0", "1"))
        with pytest.raises(ValueError, match="cells"):
            encode_configuration(params, config, 0)

    def test_meaningful_addresses_cover_content(self):
        params = params_for()
        meaningful = params.meaningful_addresses()
        assert 0 in meaningful
        assert params.parent_bit_position in meaningful
        assert params.cell_offset(0) in meaningful
        # Padding between the cells and the parent bit is not meaningful.
        if params.cells_end < params.parent_bit_position:
            assert params.cells_end not in meaningful

    def test_expected_bit_none_on_padding(self):
        params = params_for()
        config = Configuration("q_or", 0, ("0", "1"))
        if params.cells_end < params.parent_bit_position:
            assert params.expected_bit(config, 0, params.cells_end) is None
        assert params.expected_bit(config, 1, params.parent_bit_position) == 1
