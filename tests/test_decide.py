"""The unified boundedness decision API (repro.decide)."""

import pytest

from repro import zoo
from repro.core import OneCQ, StructureBuilder
from repro.core.structure import F, T
from repro.decide import (
    Method,
    decide_boundedness,
    is_d_sirup_fo_rewritable,
)
from repro.workloads.generators import iter_lambda_cqs


class TestDispatch:
    def test_span_zero_is_trivially_bounded(self):
        builder = StructureBuilder()
        builder.add_node("f", F)
        builder.add_node("t", F, T)
        builder.add_edge("f", "t")
        decision = decide_boundedness(builder.build())
        assert decision.bounded is True
        assert decision.method is Method.TRIVIAL_SPAN_ZERO
        assert decision.exact

    def test_lambda_queries_use_exact_decider(self):
        for name, expected in [("q4", False), ("q5", True), ("q7", True)]:
            decision = decide_boundedness(getattr(zoo, name)())
            assert decision.method is Method.LAMBDA_EXACT, name
            assert decision.exact
            assert decision.bounded is expected, name
            assert decision.lambda_decision is not None

    def test_non_lambda_falls_back_to_probe(self):
        decision = decide_boundedness(zoo.q2())
        assert decision.method is Method.PROBE
        assert not decision.exact
        assert decision.probe is not None
        assert decision.bounded is False  # unbounded evidence for q2

    def test_accepts_one_cq_objects(self):
        decision = decide_boundedness(OneCQ.from_structure(zoo.q5()))
        assert decision.bounded is True

    def test_rejects_multi_f_queries(self):
        with pytest.raises(ValueError):
            decide_boundedness(zoo.q1())

    def test_describe_mentions_method(self):
        decision = decide_boundedness(zoo.q5())
        assert "Theorem 9" in decision.describe()
        assert "bounded" in decision.describe()


class TestConvenienceWrapper:
    def test_fo_rewritable_zoo(self):
        assert is_d_sirup_fo_rewritable(zoo.q5()) is True
        assert is_d_sirup_fo_rewritable(zoo.q4()) is False

    def test_rejects_non_one_cq(self):
        with pytest.raises(ValueError, match="1-CQ"):
            is_d_sirup_fo_rewritable(zoo.q1())


class TestAgreementWithLambdaDecider:
    def test_random_lambda_queries_agree(self):
        from repro.ditree.lambda_cq import decide_lambda

        for q in iter_lambda_cqs(count=10, size=5, seed=21):
            one_cq = OneCQ.from_structure(q)
            unified = decide_boundedness(one_cq)
            direct = decide_lambda(one_cq)
            assert unified.bounded == direct.fo_rewritable


class TestTheorem6Routing:
    """Prop. 5 lets the Schema.org OMQ question reuse the deciders."""

    def test_schema_org_routing_agrees(self):
        from repro.obda.schema_org import decide_schema_org_fo_rewritability

        for name in ("q4", "q5", "q7"):
            q = getattr(zoo, name)()
            assert (
                decide_schema_org_fo_rewritability(q).bounded
                == decide_boundedness(q).bounded
            )
