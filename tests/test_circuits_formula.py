"""The AND/NOT formula AST: evaluation, builders, structural queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.formula import (
    And,
    Const,
    Not,
    Var,
    all_gates,
    at_least,
    bits_equal,
    branches,
    conj,
    disj,
    equals_bits,
    formula_depth,
    formula_size,
    less_than,
    lit,
    match_pattern,
    normalize,
    occurrence_counts,
    truth_table,
)


def assignments(width):
    for value in range(1 << width):
        yield [(value >> (width - 1 - i)) & 1 for i in range(width)]


class TestEvaluation:
    def test_var(self):
        assert Var(0).evaluate([1]) and not Var(0).evaluate([0])

    def test_operators(self):
        f = (Var(0) & Var(1)) | ~Var(2)
        assert f.evaluate([1, 1, 1])
        assert f.evaluate([0, 0, 0])
        assert not f.evaluate([0, 1, 1])

    def test_const(self):
        assert Const(True).evaluate([]) and not Const(False).evaluate([])

    def test_variables(self):
        f = And(Var(3), Not(Var(1)))
        assert f.variables() == {1, 3}


class TestBuilders:
    def test_conj_empty_is_true(self):
        assert conj([]).evaluate([])

    def test_disj_empty_is_false(self):
        assert not disj([]).evaluate([])

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_conj_semantics(self, bits):
        f = conj([lit(i) for i in range(len(bits))])
        assert f.evaluate([int(b) for b in bits]) == all(bits)

    @given(st.lists(st.booleans(), min_size=1, max_size=6))
    def test_disj_semantics(self, bits):
        f = disj([lit(i) for i in range(len(bits))])
        assert f.evaluate([int(b) for b in bits]) == any(bits)

    def test_conj_is_balanced(self):
        f = conj([lit(i) for i in range(16)])
        assert formula_depth(f) == 4

    def test_match_pattern_with_wildcards(self):
        f = match_pattern([1, None, 0])
        assert f.evaluate([1, 0, 0]) and f.evaluate([1, 1, 0])
        assert not f.evaluate([0, 1, 0])

    @given(st.integers(0, 15))
    def test_equals_bits(self, value):
        f = equals_bits([0, 1, 2, 3], value)
        for bits in assignments(4):
            encoded = sum(b << (3 - i) for i, b in enumerate(bits))
            assert f.evaluate(bits) == (encoded == value)

    def test_equals_bits_out_of_range(self):
        with pytest.raises(ValueError):
            equals_bits([0, 1], 4)

    @given(st.integers(0, 8))
    def test_at_least(self, bound):
        f = at_least([0, 1, 2], bound)
        for bits in assignments(3):
            encoded = sum(b << (2 - i) for i, b in enumerate(bits))
            expected = encoded >= bound
            assert normalize_eval(f, bits) == expected

    @given(st.integers(0, 8))
    def test_less_than(self, bound):
        f = less_than([0, 1, 2], bound)
        for bits in assignments(3):
            encoded = sum(b << (2 - i) for i, b in enumerate(bits))
            assert normalize_eval(f, bits) == (encoded < bound)

    def test_bits_equal(self):
        f = bits_equal([0, 1], [2, 3])
        for bits in assignments(4):
            assert f.evaluate(bits) == (bits[:2] == bits[2:])

    def test_bits_equal_width_mismatch(self):
        with pytest.raises(ValueError):
            bits_equal([0], [1, 2])


def normalize_eval(formula, bits):
    """Evaluate through Const-aware semantics (Const nodes allowed)."""
    return formula.evaluate(bits)


class TestNormalize:
    def test_removes_constants(self):
        f = And(Const(True), Var(0))
        lowered = normalize(f)
        assert all(not isinstance(g, Const) for g in all_gates(lowered))
        for bits in assignments(1):
            assert lowered.evaluate(bits) == f.evaluate(bits)

    def test_constant_formula_with_variables(self):
        f = And(Var(0), Const(False))
        lowered = normalize(f)
        for bits in assignments(1):
            assert not lowered.evaluate(bits)

    def test_tautology_lowering(self):
        f = Not(And(Var(2), Const(False)))
        lowered = normalize(f)
        for bits in assignments(3):
            assert lowered.evaluate(bits)

    def test_variable_free_constant_raises(self):
        with pytest.raises(ValueError):
            normalize(Const(True))

    @given(st.integers(0, 7))
    @settings(max_examples=16)
    def test_normalization_preserves_semantics(self, seed):
        # A small pseudo-random formula mixing constants.
        f = disj(
            [
                And(lit(seed % 3), Const(bool(seed & 1))),
                Not(And(lit((seed + 1) % 3), lit((seed + 2) % 3, False))),
            ]
        )
        lowered = normalize(f)
        for bits in assignments(3):
            assert lowered.evaluate(bits) == f.evaluate(bits)


class TestStructure:
    def test_size_and_depth(self):
        f = And(Not(Var(0)), Var(1))
        assert formula_size(f) == 4
        assert formula_depth(f) == 2

    def test_branches_occurrences(self):
        f = And(Var(0), And(Var(1), Var(0)))
        found = branches(f)
        assert [(b.variable, b.occurrence) for b in found] == [
            (0, 1),
            (1, 1),
            (0, 2),
        ]
        assert occurrence_counts(f) == {0: 2, 1: 1}

    def test_branch_gates_leaf_to_root(self):
        inner = And(Var(1), Var(0))
        f = And(Var(0), inner)
        found = branches(f)
        assert found[1].gates_leaf_to_root == (inner, f)

    def test_branches_reject_constants(self):
        with pytest.raises(ValueError):
            branches(And(Var(0), Const(True)))

    def test_truth_table(self):
        f = And(Var(0), Var(1))
        assert truth_table(f, 2) == [False, False, False, True]

    def test_truth_table_guard(self):
        with pytest.raises(ValueError):
            truth_table(Var(0), 25)
