"""Tests for the Proposition 2 probe and UCQ rewritings."""

from repro import zoo
from repro.core import (
    OneCQ,
    Verdict,
    certain_answer,
    path_structure,
    probe_boundedness,
    sigma_ucq_certain_answer,
    sigma_ucq_rewriting,
    ucq_certain_answer,
    ucq_rewriting,
)
from repro.core.cactus import build_cactus, chain_shape
from repro.core.structure import StructureBuilder


def q4_cq() -> OneCQ:
    return OneCQ.from_structure(zoo.q4())


def q5_cq() -> OneCQ:
    return OneCQ.from_structure(zoo.q5())


class TestProbeVerdicts:
    def test_q4_unbounded_evidence(self):
        result = probe_boundedness(q4_cq(), probe_depth=5)
        assert result.verdict is Verdict.UNBOUNDED_EVIDENCE
        assert result.uncovered

    def test_tf_chain_unbounded(self):
        cq = OneCQ.from_structure(path_structure(["T", "F"]))
        result = probe_boundedness(cq, probe_depth=5)
        assert result.verdict is Verdict.UNBOUNDED_EVIDENCE

    def test_q5_bounded_at_one(self):
        result = probe_boundedness(q5_cq(), probe_depth=5)
        assert result.verdict is Verdict.BOUNDED
        assert result.depth == 1

    def test_q5_sigma_bounded_at_one(self):
        result = probe_boundedness(
            q5_cq(), probe_depth=5, require_focus=True
        )
        assert result.verdict is Verdict.BOUNDED
        assert result.depth == 1

    def test_q6_pi_bounded_sigma_not(self):
        cq = OneCQ.from_structure(zoo.q6())
        pi = probe_boundedness(cq, probe_depth=2)
        sigma = probe_boundedness(cq, probe_depth=2, require_focus=True)
        assert pi.verdict is Verdict.BOUNDED
        assert sigma.verdict is Verdict.UNBOUNDED_EVIDENCE

    def test_span0_trivially_bounded(self):
        cq = OneCQ.from_structure(path_structure([("F", "T"), "F"]))
        result = probe_boundedness(cq, probe_depth=4)
        assert result.verdict is Verdict.BOUNDED
        assert result.depth == 0

    def test_describe_mentions_verdict(self):
        result = probe_boundedness(q5_cq(), probe_depth=3)
        assert "bounded" in result.describe()


class TestUCQRewriting:
    def test_q5_rewriting_has_two_disjuncts(self):
        """Example 4: (Π_q5, G) rewrites to C0 ∨ C1."""
        ucq = ucq_rewriting(q5_cq(), 1)
        assert len(ucq) == 2

    def test_rewriting_agrees_with_certain_answer_on_cactuses(self):
        """On cactus-shaped data, the UCQ and (Δ_q, G) agree (Prop. 1)."""
        cq = q5_cq()
        ucq = ucq_rewriting(cq, 1)
        for depth in range(4):
            data = build_cactus(cq, chain_shape([0] * depth)).structure
            assert ucq_certain_answer(ucq, data)
            assert certain_answer(cq.query, data)

    def test_rewriting_rejects_non_matching_data(self):
        cq = q5_cq()
        ucq = ucq_rewriting(cq, 1)
        data = path_structure(["T", "T"], prefix="d")
        assert not ucq_certain_answer(ucq, data)
        assert not certain_answer(cq.query, data)

    def test_rewriting_agrees_on_random_small_instances(self):
        import random

        rng = random.Random(3)
        cq = q5_cq()
        ucq = ucq_rewriting(cq, 1)
        for trial in range(30):
            b = StructureBuilder()
            n = rng.randint(2, 6)
            for i in range(n):
                label = rng.choice(["T", "F", "A", "", "FT"])
                if label == "FT":
                    b.add_node(i, "F", "T")
                elif label:
                    b.add_node(i, label)
                else:
                    b.add_node(i)
            for _ in range(rng.randint(1, 8)):
                b.add_edge(rng.randrange(n), rng.randrange(n))
            data = b.build()
            assert ucq_certain_answer(ucq, data) == certain_answer(
                cq.query, data
            ), data.describe()


class TestSigmaRewriting:
    def test_sigma_rewriting_matches_sirup_semantics(self):
        from repro.core.datalog import certain_answers
        from repro.core.sirup import compile_programs

        cq = q5_cq()
        rewriting = sigma_ucq_rewriting(cq, 1)
        compiled = compile_programs(cq)
        data = build_cactus(cq, chain_shape([0, 0])).sigma_structure()
        answers = certain_answers(compiled.sigma, data, "P")
        for node in sorted(data.nodes, key=str):
            assert sigma_ucq_certain_answer(rewriting, data, node) == (
                node in answers
            ), node

    def test_t_node_shortcut(self):
        cq = q5_cq()
        rewriting = sigma_ucq_rewriting(cq, 0)
        data = path_structure(["T"], prefix="d")
        assert sigma_ucq_certain_answer(rewriting, data, "d0")
