"""Exhaustive verification of the Step formula's bit arithmetic.

The explicit-head substitution (DESIGN.md, substitution 3) rests on
small increment/decrement equality formulas over head and cell-index
bits.  These tests check them against brute force on all inputs for
widths 1-4 -- if they are right, the head tracking of Step is right.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.formula import normalize
from repro.circuits.library import _equals_positions, _shift_equals, _successor_equals


def all_pairs(width):
    for x in range(1 << width):
        for y in range(1 << width):
            yield x, y


def as_bits(value, width):
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def evaluate(formula, x, y, width):
    assignment = as_bits(x, width) + as_bits(y, width)
    return normalize(formula).evaluate(assignment)


@pytest.mark.parametrize("width", [1, 2, 3, 4])
class TestSuccessor:
    def test_successor_equals(self, width):
        xs = list(range(width))
        ys = list(range(width, 2 * width))
        formula = _successor_equals(xs, ys)
        for x, y in all_pairs(width):
            expected = y == x + 1  # no overflow: x+1 must fit
            assert evaluate(formula, x, y, width) == expected, (x, y)


@pytest.mark.parametrize("width", [1, 2, 3, 4])
@pytest.mark.parametrize("shift", [-2, -1, 0, 1, 2])
class TestShift:
    def test_shift_equals(self, width, shift):
        xs = list(range(width))
        ys = list(range(width, 2 * width))
        formula = _shift_equals(xs, ys, shift)
        for x, y in all_pairs(width):
            target = x + shift
            expected = 0 <= target < (1 << width) and y == target
            assert evaluate(formula, x, y, width) == expected, (x, y)


class TestEquality:
    @given(st.integers(1, 5), st.integers(0, 31), st.integers(0, 31))
    @settings(max_examples=80)
    def test_equals_positions(self, width, x, y):
        x &= (1 << width) - 1
        y &= (1 << width) - 1
        xs = list(range(width))
        ys = list(range(width, 2 * width))
        formula = _equals_positions(xs, ys)
        assert evaluate(formula, x, y, width) == (x == y)

    def test_unsupported_shift_rejected(self):
        with pytest.raises(ValueError):
            _shift_equals([0], [1], 3)
