"""Proposition 2's rewriting transfers, executed.

(a) => (b): a UCQ rewriting of (Sigma_q, P) composes into a UCQ
rewriting of (Pi_q, G).  We build both rewritings for the bounded q5
and check they agree with the datalog engine on random data.
"""

from hypothesis import given, settings

from repro import zoo
from repro.core import OneCQ, compile_programs, evaluate
from repro.core.boundedness import (
    pi_rewriting_from_sigma,
    sigma_ucq_certain_answer,
    sigma_ucq_rewriting,
    ucq_certain_answer,
    ucq_rewriting,
)
from tests.test_property_invariants import structures


def q5_setup():
    one_cq = OneCQ.from_structure(zoo.q5())
    sigma = sigma_ucq_rewriting(one_cq, depth=1)
    composed = pi_rewriting_from_sigma(one_cq, sigma)
    return one_cq, sigma, composed


class TestComposition:
    def test_disjunct_count(self):
        one_cq, sigma, composed = q5_setup()
        # One disjunct per choice of T-or-C° at each solitary T node.
        expected = (1 + len(sigma)) ** one_cq.span
        assert len(composed) == expected

    def test_t_choice_disjunct_is_q_itself(self):
        one_cq, _sigma, composed = q5_setup()
        assert one_cq.query in composed

    def test_glued_disjuncts_carry_a_labels(self):
        one_cq, _sigma, composed = q5_setup()
        glued = [d for d in composed if d != one_cq.query]
        for disjunct in glued:
            assert disjunct.nodes_with_label("A")
            # The budded T node lost its solitary T label.
            for y in one_cq.solitary_ts:
                assert not (
                    disjunct.has_label(y, "T") and not disjunct.has_label(y, "F")
                ) or disjunct == one_cq.query


class TestSemanticAgreement:
    @given(structures(max_nodes=5, max_edges=7))
    @settings(max_examples=30, deadline=None)
    def test_composed_rewriting_computes_certain_answer(self, data):
        one_cq, _sigma, composed = q5_setup()
        programs = compile_programs(one_cq.query)
        ground_truth = evaluate(programs.pi, data).holds(programs.goal)
        assert ucq_certain_answer(composed, data) == ground_truth

    @given(structures(max_nodes=5, max_edges=7))
    @settings(max_examples=30, deadline=None)
    def test_direct_rewriting_agrees_with_composed(self, data):
        one_cq, _sigma, composed = q5_setup()
        direct = ucq_rewriting(one_cq, depth=1)
        assert ucq_certain_answer(direct, data) == ucq_certain_answer(
            composed, data
        )

    @given(structures(max_nodes=5, max_edges=7))
    @settings(max_examples=25, deadline=None)
    def test_sigma_rewriting_computes_p(self, data):
        one_cq, sigma, _composed = q5_setup()
        programs = compile_programs(one_cq.query)
        result = evaluate(programs.sigma, data)
        for node in data.nodes:
            assert sigma_ucq_certain_answer(sigma, data, node) == result.holds(
                programs.sirup_predicate, node
            )
