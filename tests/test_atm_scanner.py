"""The scanner machine: genuine head movement through the full pipeline.

The always-accept/reject machines never move their head; the scanner
writes, moves right and relies on boundary clamping.  These tests push
head arithmetic (increments, clamping, the p = 2 regime on four cells)
through the encoding, the reference checkers and the Step formula.
"""

import pytest

from repro.atm.encoding import (
    CHAIN_PREFIX,
    desired_tree_cut,
    gamma_depth,
    incorrect_nodes,
    read_full_configuration,
)
from repro.atm.machine import (
    accepts,
    find_accepting_tree,
    iter_computation_trees,
    toy_scanner_machine,
)
from repro.atm.params import EncodingParams
from repro.atm.reduction import skeleton_boundedness_semantics
from repro.circuits.gather import fires_at
from repro.circuits.library import step_formula

FRONTIER = 13


class TestScannerSemantics:
    @pytest.mark.parametrize(
        "word,cells,expected",
        [
            ("11", 2, True),
            ("10", 2, False),
            ("1", 2, False),  # the blank cell fails the all-ones check
            ("1111", 4, True),
            ("1101", 4, False),
        ],
    )
    def test_accepts_all_ones_tapes(self, word, cells, expected):
        assert accepts(toy_scanner_machine(), word, cells, 64) is expected

    def test_head_actually_moves(self):
        machine = toy_scanner_machine()
        tree = find_accepting_tree(machine, "11", 2, 64)
        assert tree is not None
        heads = {config.head for config in tree.or_configurations()}
        assert len(heads) > 1

    def test_marks_are_written(self):
        machine = toy_scanner_machine()
        tree = find_accepting_tree(machine, "11", 2, 64)
        final_tapes = {leaf.tape for leaf in tree.leaves()}
        assert all("X" in tape for tape in final_tapes)


class TestScannerEncoding:
    def build(self, word, cells):
        machine = toy_scanner_machine()
        params = EncodingParams.from_machine(machine, cells)
        comp = next(iter_computation_trees(machine, word, cells, 64))
        depth = FRONTIER + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, word, comp, depth)
        return machine, params, tree

    def test_desired_tree_correct_two_cells(self):
        machine, params, tree = self.build("11", 2)
        assert incorrect_nodes(params, machine, "11", tree, FRONTIER) == []

    def test_desired_tree_correct_four_cells(self):
        """p = 2: two head-position bits, real increments."""
        machine, params, tree = self.build("1111", 4)
        assert params.p == 2
        assert incorrect_nodes(params, machine, "1111", tree, FRONTIER) == []

    def test_heads_recorded_in_encoding(self):
        machine, params, tree = self.build("11", 2)
        grandchild = CHAIN_PREFIX + (0,)
        decoded = read_full_configuration(params, tree, grandchild)
        assert decoded is not None
        config, _ = decoded
        # After one scan step the head has moved off cell 0.
        assert config.head == 1

    def test_step_formula_silent_on_moving_machine(self):
        machine, params, tree = self.build("11", 2)
        check = step_formula(params, machine)
        for node in sorted(tree.nodes()):
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node), node

    def test_step_formula_fires_on_wrong_head(self):
        machine, params, tree = self.build("11", 2)
        check = step_formula(params, machine)
        # Flip the head bit of a grandchild configuration: the move is
        # no longer consistent with delta.
        head_address = params.n_q  # first head bit (p = 1)
        from tests.test_circuits_library import flip_bit

        mutated = flip_bit(params, tree, CHAIN_PREFIX + (0,), head_address)
        assert fires_at(check, mutated, ())


class TestScannerLemma4:
    def test_all_ones_input_unbounded(self):
        report = skeleton_boundedness_semantics(
            toy_scanner_machine(), "11", cells=2, tree_limit=4
        )
        assert not report.rejects
        assert report.accepting_clean_depth is not None

    def test_bad_input_bounded(self):
        report = skeleton_boundedness_semantics(
            toy_scanner_machine(), "10", cells=2, tree_limit=4
        )
        assert report.rejects
        assert report.cut_bound is not None
