"""Deprecation shims: renamed APIs warn once and delegate faithfully.

The semiring redesign renamed two public entry points:

* free ``count_homomorphisms`` -> the COUNT instance of the semiring
  surface (``Session.evaluate(q, d, "count")`` /
  ``Session.count_homomorphisms``), internally ``_count_homomorphisms``;
* ``dsirup.evaluate`` -> ``evaluate_dsirup`` (and the session method
  ``Session.evaluate`` now takes a *semiring*, with the old d-sirup
  strategy form delegating through :meth:`Session.evaluate_dsirup`).

Each shim must (a) emit ``DeprecationWarning``, (b) return exactly what
the renamed API returns.  ``make lint`` greps the repo so no in-tree
caller besides this file uses the deprecated names.
"""

import warnings

import pytest

from repro import Session, zoo
from repro.core import dsirup, homengine


class TestCountHomomorphismsShim:
    def test_warns_and_delegates(self):
        q, d = zoo.q1(), zoo.d1()
        with pytest.warns(DeprecationWarning, match="count_homomorphisms"):
            old = homengine.count_homomorphisms(q, d)
        assert old == homengine._count_homomorphisms(q, d)

    def test_kwargs_pass_through(self):
        q, d = zoo.q1(), zoo.d1()
        with pytest.warns(DeprecationWarning):
            old = homengine.count_homomorphisms(q, d, backend="naive")
        assert old == homengine._count_homomorphisms(q, d, backend="naive")

    def test_session_method_does_not_warn(self):
        s = Session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            n = s.count_homomorphisms(zoo.q1(), zoo.d1())
        assert n == s.evaluate(zoo.q1(), zoo.d1(), "count").value


class TestDsirupEvaluateShim:
    def test_warns_and_delegates(self):
        q, d = zoo.q2(), zoo.d2()
        with pytest.warns(DeprecationWarning, match="evaluate_dsirup"):
            old = dsirup.evaluate(q, d)
        new = dsirup.evaluate_dsirup(q, d)
        assert old.certain == new.certain

    def test_session_evaluate_strategy_positional(self):
        s = Session()
        q, d = zoo.q2(), zoo.d2()
        # The old calling convention: second positional arg a d-sirup
        # strategy name.  Must warn and route to evaluate_dsirup.
        with pytest.warns(DeprecationWarning, match="evaluate_dsirup"):
            old = s.evaluate(q, d, "exhaustive")
        assert old.certain == s.evaluate_dsirup(q, d, "exhaustive").certain

    def test_session_evaluate_strategy_keyword(self):
        s = Session()
        q, d = zoo.q2(), zoo.d2()
        with pytest.warns(DeprecationWarning, match="evaluate_dsirup"):
            old = s.evaluate(q, d, strategy="auto")
        assert old.certain is s.evaluate_dsirup(q, d, "auto").certain

    def test_auto_is_a_strategy_not_a_semiring(self):
        # "auto" never silently resolves as a semiring name.
        s = Session()
        with pytest.warns(DeprecationWarning):
            out = s.evaluate(zoo.q2(), zoo.d2(), "auto")
        assert out.certain is True

    def test_semiring_form_does_not_warn(self):
        s = Session()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ev = s.evaluate(zoo.q1(), zoo.q1(), "bool")  # identity hom
            s.evaluate(zoo.q1(), zoo.d1())  # default semiring
            s.evaluate_dsirup(zoo.q2(), zoo.d2())
            s.certain_answer(zoo.q2(), zoo.d2())
        assert ev.value is True
