"""The Session facade: EngineConfig, isolation, precedence, streaming.

Covers the acceptance criteria of the session redesign:

* two concurrently-live sessions with different configs produce
  correct, isolated results in one process;
* configuration precedence is env < constructor < per-call kwarg, with
  ``EngineConfig.from_env`` as the single env ingestion point read at
  call time (monkeypatched environments behave consistently);
* ``backend="auto"`` resolves per call from the target's size and edge
  density, pinned on both sides of the calibrated threshold;
* ``Session.screen(..., stream=True)`` yields completion-ordered shard
  results that jointly reproduce the blocking screen;
* the worker-side wire cache skips rebuilds for repeated families;
* the pre-Session free functions remain working shims over the
  default session.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import EngineConfig, Session, zoo
from repro.core import homengine
from repro.core.cactus import cactus_factory
from repro.core.config import (
    AUTO_MIN_EDGES_PER_NODE,
    AUTO_MIN_NODES,
    choose_auto_backend,
)
from repro.core.cq import OneCQ
from repro.core.runtime import ScreenShard, from_wire_cached, to_wire
from repro.core.structure import path_structure
from repro.session import (
    default_session,
    reset_default_session,
    set_default_session,
)
from repro.workloads import instance_family

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture
def fresh_default():
    """Run a test against a pristine default session, then restore."""
    previous = set_default_session(Session(EngineConfig()))
    try:
        yield default_session()
    finally:
        default_session().close()
        set_default_session(previous) if previous is not None else (
            reset_default_session()
        )


# ----------------------------------------------------------------------
# EngineConfig
# ----------------------------------------------------------------------


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "bitset"
        assert config.hom_cache and config.hom_cache_size == 8192
        assert config.workers is None and config.effective_workers() >= 1

    def test_explicit_zero_workers_disables_parallelism(self, monkeypatch):
        """Pre-Session behaviour: REPRO_HOM_WORKERS=0 (or --workers 0,
        or EngineConfig(workers=0)) disables parallelism; only the
        *unset* default resolves to the CPU count."""
        monkeypatch.setenv("REPRO_HOM_WORKERS", "0")
        assert EngineConfig.from_env().effective_workers() == 0
        assert EngineConfig(workers=0).effective_workers() == 0
        with Session(EngineConfig(workers=0)) as s:
            assert s.pool.get_pool() is None

    def test_from_env_reads_at_call_time(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOM_BACKEND", "naive")
        monkeypatch.setenv("REPRO_HOM_CACHE", "0")
        monkeypatch.setenv("REPRO_HOM_CACHE_SIZE", "17")
        monkeypatch.setenv("REPRO_HOM_WORKERS", "3")
        config = EngineConfig.from_env()
        assert config.backend == "naive"
        assert config.hom_cache is False
        assert config.hom_cache_size == 17
        assert config.workers == 3
        monkeypatch.setenv("REPRO_HOM_BACKEND", "matrix")
        assert EngineConfig.from_env().backend == "matrix"

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOM_BACKEND", "naive")
        monkeypatch.setenv("REPRO_HOM_WORKERS", "3")
        config = EngineConfig.from_env(backend="bitset")
        assert config.backend == "bitset"  # constructor wins over env
        assert config.workers == 3  # untouched knobs still come from env

    def test_invalid_backend_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="backend"):
            EngineConfig(backend="simd")
        monkeypatch.setenv("REPRO_HOM_BACKEND", "simd")
        with pytest.raises(ValueError, match="REPRO_HOM_BACKEND"):
            EngineConfig.from_env()

    def test_malformed_int_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOM_CACHE_SIZE", "not-a-number")
        assert EngineConfig.from_env().hom_cache_size == 8192

    def test_frozen_and_replace(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.backend = "naive"
        derived = config.replace(backend="naive", workers=2)
        assert (derived.backend, derived.workers) == ("naive", 2)
        assert config.backend == "bitset"
        with pytest.raises(ValueError):
            config.replace(backend="simd")

    def test_describe_lists_every_knob(self):
        text = EngineConfig().describe()
        for field in ("backend", "workers", "hom_cache_size",
                      "factory_pool_size", "effective_workers"):
            assert field in text

    def test_env_reads_confined_to_config_module(self):
        """The make-lint grep gate, mirrored as a test: the process
        environment (os.environ, os.getenv, `from os import environ`)
        may only be consulted inside core/config.py."""
        import re

        pattern = re.compile(
            r"os\.environ|os\.getenv|from os import.*environ|getenv"
        )
        offenders = []
        for path in (REPO_ROOT / "src" / "repro").rglob("*.py"):
            if path.name == "config.py" and path.parent.name == "core":
                continue
            if pattern.search(path.read_text()):
                offenders.append(str(path))
        assert offenders == []


# ----------------------------------------------------------------------
# Session isolation
# ----------------------------------------------------------------------


class TestSessionIsolation:
    def test_isolated_backends_and_caches(self):
        """Two live sessions with different backends and cache sizes
        answer correctly without sharing any state."""
        q = path_structure(["T", "T", "F"])
        d = path_structure(["T", "T", "T", "F"])
        with Session(EngineConfig(backend="naive", hom_cache_size=7)) as a, \
                Session(EngineConfig(backend="bitset")) as b:
            assert a.resolve_backend() == "naive"
            assert b.resolve_backend() == "bitset"
            assert a.has_homomorphism(q, d) is True
            assert b.has_homomorphism(q, d) is True
            # Each session answered from its own engine: both missed
            # once, and the second ask hits only its own cache.
            assert a.hom_cache_info().misses == 1
            assert b.hom_cache_info().misses == 1
            assert a.has_homomorphism(q, d) is True
            assert a.hom_cache_info().hits == 1
            assert b.hom_cache_info().hits == 0
            assert a.hom_cache_info().maxsize == 7
            assert b.hom_cache_info().maxsize == 8192

    def test_isolated_cache_toggle(self):
        q = path_structure(["T"])
        with Session(EngineConfig(hom_cache=False)) as off, \
                Session(EngineConfig()) as on:
            off.has_homomorphism(q, q)
            on.has_homomorphism(q, q)
            assert off.hom_cache_info().size == 0
            assert on.hom_cache_info().size == 1

    def test_isolated_cactus_pools(self):
        cq = OneCQ.from_structure(zoo.q3())
        with Session(EngineConfig()) as a, Session(EngineConfig()) as b:
            fa = a.cactus_factory(cq)
            fb = b.cactus_factory(cq)
            assert fa is not fb
            assert a.cactus_factory(cq) is fa  # pooled within a session
            assert cactus_factory(cq, session=a) is fa  # free-fn routing

    def test_end_to_end_agreement_across_sessions(self):
        """The tentpole acceptance: naive vs bitset sessions, live at
        once, agree on the paper's end-to-end operations."""
        q2, d2 = zoo.q2(), zoo.d2()
        q5 = OneCQ.from_structure(zoo.q5())
        family = instance_family(count=6, n=12, edge_count=24, seed=3)
        with Session(EngineConfig(backend="naive", hom_cache=False)) as a, \
                Session(EngineConfig(backend="bitset")) as b:
            assert a.certain_answer(q2, d2) == b.certain_answer(q2, d2) is True
            da = a.decide_boundedness(zoo.q5())
            db = b.decide_boundedness(zoo.q5())
            assert da.bounded is db.bounded is True
            rewriting_a = a.ucq_rewriting(q5, 1)
            rewriting_b = b.ucq_rewriting(q5, 1)
            assert a.ucq_certain_answers(rewriting_a, family) == \
                b.ucq_certain_answers(rewriting_b, family)

    def test_session_probe_matches_free_function(self):
        cq = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(backend="naive")) as s:
            probe = s.probe_boundedness(cq, 3)
        from repro.core.boundedness import probe_boundedness

        free = probe_boundedness(cq, 3)
        assert (probe.verdict, probe.depth) == (free.verdict, free.depth)

    def test_evaluate_strategies(self):
        q, d = zoo.q2(), zoo.d2()
        with Session(EngineConfig(backend="naive")) as s:
            for strategy in ("auto", "exhaustive", "branching", "pi"):
                assert s.evaluate_dsirup(q, d, strategy).certain is True

    def test_close_clears_state(self):
        q = path_structure(["T"])
        s = Session(EngineConfig())
        s.has_homomorphism(q, q)
        assert s.hom_cache_info().size == 1
        s.close()
        assert s.hom_cache_info().size == 0


# ----------------------------------------------------------------------
# Precedence: env < config < per-call
# ----------------------------------------------------------------------


class TestPrecedence:
    def test_per_call_beats_config(self):
        with Session(EngineConfig(backend="bitset")) as s:
            assert s.resolve_backend("naive") == "naive"
            q = path_structure(["T", ""])
            d = path_structure(["T", "", ""])
            # A per-call backend actually reaches the engine: the cache
            # key records the resolved backend.
            assert s.has_homomorphism(q, d, backend="naive")
            assert s.hom_cache_info().misses == 1
            assert s.has_homomorphism(q, d, backend="naive")
            assert s.hom_cache_info().hits == 1
            # Different resolved backend, different cache entry.
            assert s.has_homomorphism(q, d)
            assert s.hom_cache_info().misses == 2

    def test_default_session_honours_env_on_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOM_BACKEND", "naive")
        reset_default_session()
        try:
            assert repro.get_default_backend() == "naive"
        finally:
            monkeypatch.delenv("REPRO_HOM_BACKEND")
            reset_default_session()
        assert repro.get_default_backend() == "bitset"


# ----------------------------------------------------------------------
# Adaptive backend selection
# ----------------------------------------------------------------------


class TestAutoBackend:
    def test_heuristic_both_sides_of_threshold(self):
        n = AUTO_MIN_NODES
        dense = int(AUTO_MIN_EDGES_PER_NODE * n)
        # At or above both thresholds: matrix (when numpy is present).
        assert choose_auto_backend(n, dense, True) == "matrix"
        assert choose_auto_backend(10 * n, 100 * dense, True) == "matrix"
        # Below either threshold: bitset.
        assert choose_auto_backend(n - 1, dense, True) == "bitset"
        assert choose_auto_backend(n, dense - 1, True) == "bitset"
        assert choose_auto_backend(8, 200, True) == "bitset"
        # Without numpy the dense path does not exist: always bitset.
        assert choose_auto_backend(10 * n, 100 * dense, False) == "bitset"

    def test_session_resolves_auto_per_target(self):
        with Session(EngineConfig(backend="auto")) as s:
            small = zoo.q2()
            assert s.resolve_backend(None, small) == "bitset"
            big = instance_family(
                count=1,
                n=AUTO_MIN_NODES + 50,
                edge_count=int(
                    AUTO_MIN_EDGES_PER_NODE * (AUTO_MIN_NODES + 50) * 2
                ),
                seed=1,
            )[0]
            expected = (
                "matrix"
                if homengine.matrix_backend_available()
                else "bitset"
            )
            assert s.resolve_backend(None, big) == expected
            # auto also works per call, on a non-auto session.
        with Session(EngineConfig(backend="bitset")) as s:
            assert s.resolve_backend("auto", small) == "bitset"

    def test_auto_answers_match_bitset(self):
        q = path_structure(["", "", ""])
        family = instance_family(count=4, n=150, edge_count=450, seed=5)
        with Session(EngineConfig(backend="auto")) as auto, \
                Session(EngineConfig(backend="bitset")) as bits:
            assert [auto.has_homomorphism(q, d) for d in family] == \
                [bits.has_homomorphism(q, d) for d in family]


# ----------------------------------------------------------------------
# Streaming screen
# ----------------------------------------------------------------------


class TestStreamingScreen:
    @staticmethod
    def _reassemble(shards, n_queries, n_instances):
        matrix = [[None] * n_instances for _ in range(n_queries)]
        for shard in shards:
            assert isinstance(shard, ScreenShard)
            for qi in range(n_queries):
                row = shard.answers[qi]
                assert len(row) == shard.stop - shard.start
                for i, answer in enumerate(row):
                    assert matrix[qi][shard.start + i] is None  # no overlap
                    matrix[qi][shard.start + i] = answer
        assert all(a is not None for row in matrix for a in row)  # coverage
        return matrix

    def test_stream_matches_blocking_screen_serial(self):
        q5 = OneCQ.from_structure(zoo.q5())
        family = instance_family(count=10, n=12, edge_count=24, seed=7)
        with Session(EngineConfig(workers=1)) as s:
            queries = s.ucq_rewriting(q5, 1)
            blocking = s.screen(queries, family)
            shards = list(s.screen(queries, family, stream=True))
            assert self._reassemble(
                shards, len(queries), len(family)
            ) == blocking

    def test_stream_matches_blocking_screen_parallel(self):
        q5 = OneCQ.from_structure(zoo.q5())
        family = instance_family(count=24, n=12, edge_count=24, seed=8)
        with Session(
            EngineConfig(workers=2, parallel_min=4)
        ) as s:
            queries = s.ucq_rewriting(q5, 1)
            blocking = s.screen(queries, family)
            shards = list(s.screen(queries, family, stream=True))
            assert self._reassemble(
                shards, len(queries), len(family)
            ) == blocking
            # The parallel path shards the family, so the stream has
            # strictly more than one shard iff the pool spawned; either
            # way the reassembly above proves exact coverage.
            if s.pool_info().running:
                assert len(shards) > 1

    def test_stream_empty_inputs(self):
        with Session(EngineConfig(workers=1)) as s:
            assert list(s.screen([], [], stream=True)) == []
            assert list(
                s.screen([zoo.q2()], [], stream=True)
            ) == []


# ----------------------------------------------------------------------
# Worker-side wire cache
# ----------------------------------------------------------------------


class TestWorkerWireCache:
    def test_repeated_wire_returns_cached_object(self):
        d = instance_family(count=1, n=20, edge_count=40, seed=9)[0]
        wire = to_wire(d)
        first = from_wire_cached(wire, 8)
        # A *new, equal* wire (fresh tuples, as a worker receives per
        # task) must hit: the cache is keyed on wire content.
        again = from_wire_cached(to_wire(d), 8)
        assert again is first
        assert again.fingerprint == d.fingerprint

    def test_limit_zero_bypasses(self):
        d = instance_family(count=1, n=10, edge_count=20, seed=9)[0]
        wire = to_wire(d)
        assert from_wire_cached(wire, 0) is not from_wire_cached(wire, 0)

    def test_lru_bound_respected(self):
        from repro.core import runtime

        runtime._WIRE_CACHE.clear()
        family = instance_family(count=5, n=8, edge_count=12, seed=10)
        for d in family:
            from_wire_cached(to_wire(d), 3)
        assert len(runtime._WIRE_CACHE) == 3

    def test_worker_opts_carry_session_backend_and_cache(self):
        """Sharded tasks ship the calling session's resolved backend,
        cache veto *and full config* — workers must not silently fall
        back to their own env-built defaults (the naive-oracle pattern
        of quickstart section 7 depends on this)."""
        from repro.core import runtime

        with Session(
            EngineConfig(backend="naive", hom_cache=False)
        ) as oracle:
            backend, veto, config = runtime._worker_opts(oracle, None)
            assert (backend, veto) == ("naive", False)
            # The full resolved config ships, with nested parallelism
            # stripped (a worker must never spawn its own pool).
            assert config == oracle.config.replace(workers=1)
            # A per-call backend still wins over the session default.
            assert runtime._worker_opts(oracle, "matrix")[:2] == (
                "matrix", False
            )
        with Session(EngineConfig(backend="auto")) as adaptive:
            # "auto" ships as-is: workers keep resolving it per target.
            assert runtime._worker_opts(adaptive, None)[:2] == ("auto", None)

    def test_worker_session_honours_shipped_config(self):
        """A worker task carrying an EngineConfig runs in a session
        built from it — cache sizes and thresholds included — instead
        of the worker's env-built default session (ROADMAP leftover
        closed: the full config now ships over the wire)."""
        from repro.core import runtime

        config = EngineConfig(
            backend="naive", hom_cache_size=7, worker_cache_size=3
        )
        shipped = config.replace(workers=1)
        session = runtime._worker_session(shipped)
        assert session.hom.cache_maxsize == 7
        assert session.hom.default_backend == "naive"
        assert session.pool.workers == 1
        # Same config -> same worker session (and its warm caches).
        assert runtime._worker_session(shipped) is session
        # A task from a differently-configured caller swaps it out.
        other = runtime._worker_session(shipped.replace(hom_cache_size=9))
        assert other is not session
        assert other.hom.cache_maxsize == 9
        # In-process worker call honours the shipped config end to end.
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        answers = runtime._worker_evaluate_chunk(
            to_wire(q), [to_wire(d)], None, 0, None, shipped
        )
        assert answers == [True]
        assert runtime._WORKER_SESSION[0] == shipped
        runtime._WORKER_SESSION = None

    def test_parallel_screen_correct_with_worker_cache(self):
        """Back-to-back screens over one family (the cache's target
        traffic) stay correct through the sharded path."""
        q5 = OneCQ.from_structure(zoo.q5())
        family = instance_family(count=24, n=12, edge_count=24, seed=11)
        with Session(
            EngineConfig(workers=2, parallel_min=4, worker_cache_size=64)
        ) as s:
            queries = s.ucq_rewriting(q5, 1)
            first = s.screen(queries, family)
            second = s.screen(queries, family)
            assert first == second
            with Session(EngineConfig(workers=1)) as serial:
                assert serial.screen(queries, family) == first


# ----------------------------------------------------------------------
# Free-function shims over the default session
# ----------------------------------------------------------------------


class TestDefaultSessionShims:
    def test_set_default_backend_routes_to_default_session(
        self, fresh_default
    ):
        previous = repro.set_default_backend("naive")
        assert previous == "bitset"
        assert default_session().hom.default_backend == "naive"
        assert repro.get_default_backend() == "naive"

    def test_configure_cache_routes_to_default_session(self, fresh_default):
        homengine.configure_cache(enabled=False, maxsize=5)
        info = homengine.hom_cache_info()
        assert (info.enabled, info.maxsize) == (False, 5)
        assert fresh_default.hom_cache_info().maxsize == 5

    def test_free_functions_use_default_session_cache(self, fresh_default):
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        assert repro.has_homomorphism(q, d) is True
        assert fresh_default.hom_cache_info().misses == 1
        assert repro.has_homomorphism(q, d) is True
        assert fresh_default.hom_cache_info().hits == 1

    def test_screen_zoo_accepts_session(self):
        family = instance_family(count=3, n=10, edge_count=15, seed=12)
        with Session(EngineConfig(backend="naive")) as s:
            rows = s.screen_zoo(family, probe_depth=2)
        names = [row.name for row in rows]
        assert names == [e.name for e in zoo.zoo_table()]


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------


class TestCLIConfig:
    def _run(self, *args, env=None):
        import os

        full_env = dict(os.environ)
        full_env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + full_env["PYTHONPATH"]
            if full_env.get("PYTHONPATH")
            else ""
        )
        if env:
            full_env.update(env)
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            env=full_env,
            cwd=REPO_ROOT,
        )

    def test_config_prints_resolved_config(self):
        result = self._run("config")
        assert result.returncode == 0
        assert "backend='bitset'" in result.stdout
        assert "effective_workers=" in result.stdout

    def test_flags_override_env(self):
        result = self._run(
            "--backend", "naive", "--workers", "2", "--no-cache", "config",
            env={"REPRO_HOM_BACKEND": "matrix"},
        )
        assert result.returncode == 0
        assert "backend='naive'" in result.stdout
        assert "workers=2" in result.stdout
        assert "hom_cache=False" in result.stdout

    def test_env_reaches_config_without_flags(self):
        result = self._run(
            "config", env={"REPRO_HOM_BACKEND": "naive"}
        )
        assert result.returncode == 0
        assert "backend='naive'" in result.stdout

    def test_decide_respects_backend_flag(self):
        result = self._run("--backend", "naive", "decide", "q5")
        assert result.returncode == 0
        assert "bounded" in result.stdout
