"""Executable hardness reductions (Theorem 7 and Appendix G).

The reduction theorems are verified *semantically*: for sampled graphs,
the certain answer over the constructed instance equals reachability.
"""

import pytest

from repro import zoo
from repro.core import certain_answer
from repro.ditree import (
    Digraph,
    DitreeCQ,
    grid_dag,
    pick_reduction_pair,
    random_dag,
    random_graph,
    reachability_instance,
)


class TestDigraph:
    def test_reachable(self):
        g = Digraph((0, 1, 2, 3), ((0, 1), (1, 2)))
        assert g.reachable(0) == {0, 1, 2}
        assert g.reachable(3) == {3}

    def test_undirected_reachable(self):
        g = Digraph((0, 1, 2), ((1, 0),))
        assert g.undirected_reachable(0) == {0, 1}

    def test_is_dag(self):
        assert Digraph((0, 1), ((0, 1),)).is_dag()
        assert not Digraph((0, 1), ((0, 1), (1, 0))).is_dag()

    def test_grid_dag(self):
        g = grid_dag(3, 2)
        assert len(g.vertices) == 6
        assert g.is_dag()
        assert (2, 1) in g.reachable((0, 0))

    def test_random_dag_is_dag(self):
        assert random_dag(12, 0.3, seed=1).is_dag()


class TestReductionPair:
    def test_comparable_pair_for_q3(self):
        cq = DitreeCQ.from_structure(zoo.q3())
        t, f = pick_reduction_pair(cq)
        assert cq.comparable(t, f)

    def test_q4_has_no_pair(self):
        with pytest.raises(ValueError):
            pick_reduction_pair(DitreeCQ.from_structure(zoo.q4()))

    def test_asymmetric_incomparable_pair(self):
        from repro.core import StructureBuilder
        from repro.core.structure import F, T

        b = StructureBuilder()
        b.add_node("x", F)
        b.add_node("y")
        b.add_node("m")
        b.add_node("z", T)
        b.add_edge("y", "x")
        b.add_edge("y", "m")
        b.add_edge("m", "z")
        cq = DitreeCQ.from_structure(b.build())
        t, f = pick_reduction_pair(cq)
        assert not cq.comparable(t, f)


class TestTheorem7Reduction:
    """s ->_G t  iff  certain answer over D_G is 'yes' (Theorem 7)."""

    def _check(self, q, graph, source, target):
        cq = DitreeCQ.from_structure(q)
        data = reachability_instance(cq, graph, source, target)
        expected = target in graph.reachable(source)
        assert certain_answer(q, data) == expected

    def test_q3_path_reachable(self):
        g = Digraph((0, 1, 2), ((0, 1), (1, 2)))
        self._check(zoo.q3(), g, 0, 2)

    def test_q3_path_unreachable(self):
        g = Digraph((0, 1, 2), ((1, 0), (1, 2)))
        self._check(zoo.q3(), g, 0, 2)

    def test_q3_disconnected(self):
        g = Digraph((0, 1, 2, 3), ((0, 1), (2, 3)))
        self._check(zoo.q3(), g, 0, 3)

    def test_q3_on_small_grid(self):
        g = grid_dag(2, 2)
        self._check(zoo.q3(), g, (0, 0), (1, 1))

    @pytest.mark.parametrize("seed", range(6))
    def test_q3_random_dags(self, seed):
        g = random_dag(6, 0.25, seed)
        self._check(zoo.q3(), g, 0, 5)

    @pytest.mark.parametrize("seed", range(4))
    def test_asymmetric_case_ii_random_dags(self, seed):
        from repro.core import StructureBuilder
        from repro.core.structure import F, T

        b = StructureBuilder()
        b.add_node("x", F)
        b.add_node("y")
        b.add_node("m")
        b.add_node("z", T)
        b.add_edge("y", "x")
        b.add_edge("y", "m")
        b.add_edge("m", "z")
        g = random_dag(5, 0.3, seed)
        self._check(b.build(), g, 0, 4)


class TestAppendixGReduction:
    """Undirected reachability for the quasi-symmetric q4 (L-hardness)."""

    def _check_undirected(self, graph, source, target):
        q = zoo.q4()
        cq = DitreeCQ.from_structure(q)
        # Appendix G uses the same instance builder; for q4 the pair is
        # its unique solitary pair.
        data = reachability_instance(cq, graph, source, target, pair=("z", "x"))
        expected = target in graph.undirected_reachable(source)
        assert certain_answer(q, data) == expected

    def test_connected_path(self):
        g = Digraph((0, 1, 2), ((0, 1), (1, 2)))
        self._check_undirected(g, 0, 2)

    def test_reverse_edges_still_reachable(self):
        # Symmetric query: direction of graph edges must not matter.
        g = Digraph((0, 1, 2), ((1, 0), (2, 1)))
        self._check_undirected(g, 0, 2)

    def test_disconnected(self):
        g = Digraph((0, 1, 2, 3), ((0, 1), (2, 3)))
        self._check_undirected(g, 0, 3)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_graph(5, 0.3, seed)
        self._check_undirected(g, 0, 4)
