"""Workload generators: determinism, validity, and shape guarantees."""

from repro.core import Structure, is_one_cq
from repro.core.cq import solitary_f_nodes, solitary_t_nodes
from repro.ditree import DitreeCQ
from repro.workloads.generators import (
    iter_lambda_cqs,
    random_ditree_cq,
    random_instance,
    random_lambda_cq,
    random_path_instance,
)


class TestDeterminism:
    def test_random_instance_seeded(self):
        a = random_instance(n=8, edge_count=12, seed=5)
        b = random_instance(n=8, edge_count=12, seed=5)
        assert a == b
        c = random_instance(n=8, edge_count=12, seed=6)
        assert a != c

    def test_random_ditree_seeded(self):
        a = random_ditree_cq(n=6, seed=9)
        b = random_ditree_cq(n=6, seed=9)
        assert a == b

    def test_lambda_stream_seeded(self):
        first = list(iter_lambda_cqs(count=5, size=5, seed=3))
        second = list(iter_lambda_cqs(count=5, size=5, seed=3))
        assert first == second


class TestValidity:
    def test_random_instances_have_requested_nodes(self):
        data = random_instance(n=10, edge_count=15, seed=1)
        assert len(data) >= 10

    def test_path_instances_are_paths(self):
        data = random_path_instance(n=7, seed=2)
        assert isinstance(data, Structure)
        # A path has n-1 binary facts over n nodes.
        roots = [v for v in data.nodes if not data.in_edges(v)]
        assert len(roots) >= 1

    def test_generated_ditrees_are_ditrees(self):
        produced = 0
        for seed in range(40):
            q = random_ditree_cq(n=6, seed=seed)
            if q is None:
                continue
            produced += 1
            assert q.is_ditree()
        assert produced > 5

    def test_generated_lambda_cqs_are_lambda(self):
        for q in iter_lambda_cqs(count=10, size=6, seed=4):
            assert is_one_cq(q)
            cq = DitreeCQ.from_structure(q)
            assert cq.is_lambda_cq()
            assert len(solitary_f_nodes(q)) == 1

    def test_lambda_span_parameter(self):
        for q in iter_lambda_cqs(count=5, size=7, seed=8, span=2):
            assert len(solitary_t_nodes(q)) == 2

    def test_invalid_draws_return_none_not_garbage(self):
        results = [random_lambda_cq(3, seed, span=1) for seed in range(30)]
        for q in results:
            assert q is None or is_one_cq(q)
