"""The Sec. 3.4 formulas, cross-validated against the reference
correctness predicates of :mod:`repro.atm.encoding` on real encodings."""


from repro.atm.encoding import (
    CHAIN_PREFIX,
    GAMMA_PREFIX,
    ZeroOneTree,
    desired_tree_cut,
    gamma_depth,
    gamma_paths,
    ideal_tree_cut,
    is_good,
    is_properly_branching,
    read_config_bits,
    represents_reject,
)
from repro.atm.machine import (
    initial_configuration,
    iter_computation_trees,
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)
from repro.atm.params import EncodingParams, encode_configuration
from repro.circuits.formula import formula_size
from repro.circuits.gather import fires_at, satisfying_inputs
from repro.circuits.library import (
    build_library,
    cell_formula,
    good_formula,
    head_formula,
    init_formula,
    must_branch_formula,
    no_branch_pair_formula,
    reject_formula,
    same_cell_formula,
    state_formula,
    step_formula,
)

FRONTIER = 9

_SETUP_CACHE: dict = {}


def toy_setup(machine_factory=toy_reject_machine, word="1"):
    key = (machine_factory.__name__, word)
    if key not in _SETUP_CACHE:
        machine = machine_factory()
        params = EncodingParams.from_machine(machine, 2)
        comp = next(iter_computation_trees(machine, word, 2, 16))
        depth = FRONTIER + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, word, comp, depth)
        _SETUP_CACHE[key] = (machine, params, comp, tree)
    return _SETUP_CACHE[key]


def flip_bit(params, tree, main, address):
    """Reroute the gamma value edge of ``address`` under ``main``."""
    bits = read_config_bits(params, tree, main)
    path = []
    for i in range(params.d):
        path.extend(GAMMA_PREFIX)
        path.append((address >> (params.d - 1 - i)) & 1)
    path.extend(GAMMA_PREFIX)
    stem = tuple(main) + tuple(path)
    return tree.remove_subtree(stem + (bits[address],)).add_paths(
        [stem + (1 - bits[address],)]
    )


class TestGood:
    def test_matches_reference_on_desired_tree(self):
        machine, params, _, tree = toy_setup()
        check = good_formula(params)
        window = 4 * params.d + 11
        # Sample around the window boundary where goodness is decided.
        nodes = [
            node
            for node in sorted(tree.nodes())
            if window - 2 <= len(node) <= window + 3
        ][:200] + [node for node in sorted(tree.nodes()) if len(node) <= 6]
        for node in nodes:
            assert fires_at(check, tree, node) == (
                not is_good(params, tree, node)
            )

    def test_fires_on_anchorless_path(self):
        _, params, _, _ = toy_setup()
        check = good_formula(params)
        window = 4 * params.d + 11
        tree = ZeroOneTree([(1,) * (window + 1)])
        assert fires_at(check, tree, (1,) * window)
        assert not fires_at(check, tree, (1,) * (window - 1))


class TestBranchingPatterns:
    def test_must_branch_exists_only_for_k4_and_w3(self):
        _, params, _, _ = toy_setup()
        for k in range(4, 4 * params.d + 12):
            check = must_branch_formula(params, k)
            if k == 4 or (k - 4) % 4 == 3:
                if (k - 4) // 4 <= params.d + 1:
                    assert check is not None, k
            else:
                assert check is None, k

    def test_no_branch_pair_k(self):
        _, params, _, _ = toy_setup()
        check = no_branch_pair_formula(params)
        assert check.spec.arity == (4 * params.d + 7) + 2

    def test_branching_formulas_silent_on_desired_tree(self):
        machine, params, _, tree = toy_setup()
        lib = build_library(params, machine, ["1"])
        nodes = [n for n in sorted(tree.nodes()) if len(n) < FRONTIER]
        nodes += [
            n for n in sorted(tree.nodes()) if FRONTIER <= len(n) <= 30
        ][::23]
        for node in nodes:
            if not tree.children(node):
                continue
            for check in lib.branching_checks():
                assert not fires_at(check, tree, node), (node, check.name)

    def test_no_branch_zero_fires_on_forbidden_zero_child(self):
        machine, params, _, tree = toy_setup()
        # Graft a 0-child in the middle of a 111 block of the root gamma:
        # after '1' the node has suffix w=1 and forbids 0-children.
        mutated = tree.add_paths([(1, 0)])
        lib = build_library(params, machine, ["1"])
        fired = [
            check.name
            for check in lib.no_branch_zero
            if fires_at(check, tree=mutated, node=(1,))
        ]
        assert fired
        assert not is_properly_branching(params, mutated, (1,))

    def test_no_branch_one_fires_below_bit_leaf(self):
        machine, params, _, tree = toy_setup()
        config = initial_configuration(machine, "1", params.cells)
        bits = encode_configuration(params, config, 0)
        leaf = gamma_paths(params, bits)[0]
        # Below a bit leaf only a 0-child may start the restart chain.
        mutated = tree.add_paths([leaf + (1,)])
        fired = [
            check.name
            for check in build_library(params, machine, ["1"]).no_branch_one
            if fires_at(check, mutated, leaf)
        ]
        assert fired

    def test_pair_fires_on_double_value(self):
        machine, params, _, tree = toy_setup()
        config = initial_configuration(machine, "1", params.cells)
        bits = encode_configuration(params, config, 0)
        leaf = gamma_paths(params, bits)[0]
        stem = leaf[:-1]
        mutated = tree.add_paths([stem + (1 - leaf[-1],)])
        check = no_branch_pair_formula(params)
        assert fires_at(check, mutated, stem)
        assert not fires_at(check, tree, stem)

    def test_must_branch_pattern_matches_one_child_nodes(self):
        machine, params, _, tree = toy_setup()
        # The root main node's 001*-suffix matches MustBranch[4]; on the
        # (gated) skeleton semantics it would only count at one-child
        # segments, but the raw formula fires whenever the pattern fits.
        check = must_branch_formula(params, 4)
        assert check is not None
        assert fires_at(check, tree, ())


class TestRejectFormula:
    def test_agrees_with_reference(self):
        machine, params, _, tree = toy_setup()
        check = reject_formula(params, machine)
        for node in tree.nodes():
            if len(node) >= FRONTIER:
                continue
            assert fires_at(check, tree, node) == represents_reject(
                params, machine, tree, node
            )

    def test_silent_for_accepting_machine(self):
        machine, params, _, tree = toy_setup(toy_accept_machine)
        check = reject_formula(params, machine)
        for node in tree.nodes():
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node)


class TestStructuralFormulas:
    def test_head_gatherable_at_main_nodes(self):
        machine, params, _, tree = toy_setup()
        check = head_formula(params)
        hits = satisfying_inputs(check, tree, ())
        # One gather per cell (index enumerated by the shared param).
        assert len(hits) == params.cells

    def test_state_gatherable_exactly_once(self):
        machine, params, _, tree = toy_setup()
        check = state_formula(params)
        assert len(satisfying_inputs(check, tree, ())) == 1

    def test_cell_formula_reads_blocks(self):
        machine, params, _, tree = toy_setup()
        check = cell_formula(params)
        hits = satisfying_inputs(check, tree, ())
        assert len(hits) == params.cells

    def test_same_cell_requires_common_index(self):
        machine, params, _, tree = toy_setup()
        check = same_cell_formula(params)
        hits = satisfying_inputs(check, tree, ())
        assert len(hits) == params.cells

    def test_not_gatherable_at_non_main(self):
        machine, params, _, tree = toy_setup()
        check = state_formula(params)
        assert not satisfying_inputs(check, tree, (1,))


class TestStepFormula:
    def test_silent_on_desired_tree(self):
        machine, params, _, tree = toy_setup()
        check = step_formula(params, machine)
        for node in tree.nodes():
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node), node

    def test_fires_on_flipped_symbol(self):
        machine, params, _, tree = toy_setup()
        check = step_formula(params, machine)
        address = params.cell_offset(0) + params.n_gamma - 1
        mutated = flip_bit(params, tree, CHAIN_PREFIX + (0,), address)
        assert fires_at(check, mutated, ())

    def test_fires_on_flipped_state_bit(self):
        machine, params, _, tree = toy_setup()
        check = step_formula(params, machine)
        mutated = flip_bit(params, tree, CHAIN_PREFIX + (1,), 0)
        assert fires_at(check, mutated, ())

    def test_fires_on_flipped_parent_bit(self):
        machine, params, _, tree = toy_setup()
        check = step_formula(params, machine)
        mutated = flip_bit(
            params, tree, CHAIN_PREFIX + (0,), params.parent_bit_position
        )
        assert fires_at(check, mutated, ())

    def test_fires_on_flipped_block_pad_bit(self):
        machine, params, _, tree = toy_setup()
        check = step_formula(params, machine)
        mutated = flip_bit(params, tree, CHAIN_PREFIX + (0,), params.cell_offset(0))
        assert fires_at(check, mutated, ())

    def test_silent_on_accepting_tree(self):
        machine, params, _, tree = toy_setup(toy_accept_machine)
        check = step_formula(params, machine)
        for node in tree.nodes():
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node)

    def test_alternation_machine_with_moves(self):
        """A machine whose transitions move the head still validates."""
        machine, params, _, tree = toy_setup(toy_alternation_machine)
        check = step_formula(params, machine)
        for node in tree.nodes():
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node), node


class TestInitFormula:
    def restart_setup(self, word="1"):
        machine = toy_accept_machine()
        params = EncodingParams.from_machine(machine, 2)
        comp = next(iter_computation_trees(machine, word, 2, 16))
        gd = gamma_depth(params)
        tree = ideal_tree_cut(
            params, machine, word, lambda _i: comp, 2 * gd + 12
        )
        config = initial_configuration(machine, word, params.cells)
        bits = encode_configuration(params, config, 0)
        leaf = gamma_paths(params, bits)[0]
        restart = leaf + CHAIN_PREFIX + (0,)
        return machine, params, tree, restart

    def test_silent_at_correct_restart(self):
        machine, params, tree, restart = self.restart_setup()
        check = init_formula(params, machine, ["1"])
        assert not fires_at(check, tree, restart)

    def test_fires_for_wrong_word(self):
        machine, params, tree, restart = self.restart_setup()
        check = init_formula(params, machine, ["0"])
        assert fires_at(check, tree, restart)

    def test_fires_on_nonblank_tail(self):
        machine, params, tree, restart = self.restart_setup()
        # Flip a symbol bit of the blank cell beyond the input word.
        address = params.cell_offset(1) + params.n_gamma - 1
        mutated = flip_bit(params, tree, restart, address)
        check = init_formula(params, machine, ["1"])
        assert fires_at(check, mutated, restart)

    def test_fires_on_wrong_parent_bit(self):
        machine, params, tree, restart = self.restart_setup()
        mutated = flip_bit(params, tree, restart, params.parent_bit_position)
        check = init_formula(params, machine, ["1"])
        assert fires_at(check, mutated, restart)

    def test_silent_away_from_restarts(self):
        machine, params, tree, restart = self.restart_setup()
        check = init_formula(params, machine, ["1"])
        # Configuration children inside a beta tree have a 001*001*
        # context, not 111*001*, so Init cannot fire there.
        assert not fires_at(check, tree, CHAIN_PREFIX + (0,))


class TestLibrary:
    def test_inventory_complete(self):
        machine, params, _, _ = toy_setup()
        lib = build_library(params, machine, ["1"])
        names = [c.name for c in lib.all_checks()]
        assert "Good" in names and "Step" in names
        assert "Init" in names and "Reject" in names
        assert any(n.startswith("MustBranch") for n in names)
        assert any(n.startswith("NoBranch0") for n in names)
        assert any(n.startswith("NoBranch1") for n in names)
        assert any(n.startswith("NoBranchPair") for n in names)

    def test_sizes_reported(self):
        machine, params, _, _ = toy_setup()
        lib = build_library(params, machine, ["1"])
        assert lib.total_size() > 0
        assert "Good" in lib.describe()

    def test_formula_sizes_polynomial_in_word(self):
        """Library size grows modestly with |w| for fixed cells."""
        machine = toy_reject_machine()
        params = EncodingParams.from_machine(machine, 2)
        small = build_library(params, machine, ["1"]).total_size()
        big = build_library(params, machine, ["1", "0"]).total_size()
        assert big >= small
        assert big <= small + 40 * formula_size(
            init_formula(params, machine, ["1"]).formula
        )
