"""Tests for 1-CQ analysis and the Π_q / Σ_q compilation."""

import pytest

from repro.core import (
    GOAL,
    OneCQ,
    StructureBuilder,
    compile_programs,
    is_one_cq,
    path_structure,
    solitary_f_nodes,
    solitary_t_nodes,
    twin_nodes,
)
from repro.core.cq import check_labels_sanity
from repro.core.sirup import P


def q_example4() -> OneCQ:
    """The paper's q4: G <- F(x), R(y, x), R(y, z), T(z)."""
    b = StructureBuilder()
    b.add_node("x", "F")
    b.add_node("y")
    b.add_node("z", "T")
    b.add_edge("y", "x")
    b.add_edge("y", "z")
    return OneCQ.from_structure(b.build())


class TestLabelAnalysis:
    def test_solitary_nodes(self):
        q = path_structure(["T", ("F", "T"), "F"])
        assert solitary_t_nodes(q) == {"v0"}
        assert solitary_f_nodes(q) == {"v2"}
        assert twin_nodes(q) == {"v1"}

    def test_is_one_cq(self):
        assert is_one_cq(path_structure(["T", "F"]))
        assert not is_one_cq(path_structure(["F", "F"]))
        assert not is_one_cq(path_structure(["T", "T"]))

    def test_one_cq_rejects_multiple_f(self):
        with pytest.raises(ValueError):
            OneCQ.from_structure(path_structure(["F", "F", "T"]))

    def test_one_cq_span_and_twins(self):
        q = OneCQ.from_structure(path_structure(["T", ("F", "T"), "T", "F"]))
        assert q.span == 2
        assert q.twins == {"v1"}
        assert q.focus == "v3"
        assert "span" not in q.describe() or True  # describe() is textual

    def test_twins_not_counted_as_solitary(self):
        q = OneCQ.from_structure(path_structure([("F", "T"), "F"]))
        assert q.span == 0

    def test_sanity_warnings(self):
        assert check_labels_sanity(path_structure(["F", "T"])) == []
        warnings = check_labels_sanity(path_structure(["T", "T"]))
        assert any("no F node" in w for w in warnings)


class TestCompilation:
    def test_pi_has_three_rules_sigma_two(self):
        compiled = compile_programs(q_example4())
        assert len(compiled.pi.rules) == 3
        assert len(compiled.sigma.rules) == 2

    def test_sigma_is_a_sirup(self):
        compiled = compile_programs(q_example4())
        assert compiled.sigma.is_sirup()
        # Π_q is not a sirup: its goal rule also uses the IDB P, so it has
        # two rules with IDB atoms in the body (the paper calls Σ_q the
        # "sirup sub-program" of Π_q for exactly this reason).
        assert not compiled.pi.is_sirup()

    def test_goal_rule_shape(self):
        compiled = compile_programs(q_example4())
        goal_rules = [r for r in compiled.pi.rules if r.head_pred == GOAL]
        assert len(goal_rules) == 1
        body = goal_rules[0].body
        assert body.has_label("x", "F")
        assert body.has_label("z", P)
        assert not body.has_label("z", "T")

    def test_recursive_rule_shape(self):
        compiled = compile_programs(q_example4())
        rec = [
            r
            for r in compiled.sigma.rules
            if P in r.body.unary_predicates
        ]
        assert len(rec) == 1
        body = rec[0].body
        assert body.has_label("x", "A")
        assert not body.has_label("x", "F")
        assert body.has_label("z", P)

    def test_twins_survive_in_q_minus(self):
        q = OneCQ.from_structure(path_structure(["T", ("F", "T"), "F"]))
        compiled = compile_programs(q)
        rec = compiled.sigma.recursive_rules()[0]
        assert rec.body.has_label("v1", "F")
        assert rec.body.has_label("v1", "T")

    def test_compile_accepts_raw_structure(self):
        compiled = compile_programs(path_structure(["T", "F"]))
        assert compiled.one_cq.focus == "v1"

    def test_goal_and_predicate_names(self):
        compiled = compile_programs(q_example4())
        assert compiled.goal == GOAL
        assert compiled.sirup_predicate == P
