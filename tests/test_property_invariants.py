"""Property-based invariants across the core substrate (hypothesis).

These complement the unit suites with randomised laws: structure
algebra, homomorphism composition/closure, cactus combinatorics and the
Proposition 1 equivalence between the datalog engine and cactus
embeddings on random data.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OneCQ,
    Structure,
    certain_answer,
    compile_programs,
    evaluate,
    evaluate_branching,
    evaluate_exhaustive,
    find_homomorphism,
    goal_certain_via_cactuses,
    is_homomorphism,
    iter_cactuses,
    iter_homomorphisms,
)
from repro.core.structure import BinaryFact, UnaryFact
from repro import zoo


# ---------------------------------------------------------------------------
# Random structures
# ---------------------------------------------------------------------------

LABELS = ("F", "T", "A")
PREDS = ("R", "S")


@st.composite
def structures(draw, max_nodes=6, max_edges=8):
    n = draw(st.integers(1, max_nodes))
    nodes = [f"n{i}" for i in range(n)]
    unary = draw(
        st.lists(
            st.tuples(st.sampled_from(LABELS), st.sampled_from(nodes)),
            max_size=max_nodes,
        )
    )
    binary = draw(
        st.lists(
            st.tuples(
                st.sampled_from(PREDS),
                st.sampled_from(nodes),
                st.sampled_from(nodes),
            ),
            max_size=max_edges,
        )
    )
    return Structure(
        nodes,
        (UnaryFact(label, node) for label, node in unary),
        (BinaryFact(p, s, d) for p, s, d in binary),
    )


class TestStructureAlgebra:
    @given(structures())
    @settings(max_examples=60)
    def test_rename_identity(self, s):
        assert s.rename({}) == s

    @given(structures())
    @settings(max_examples=60)
    def test_union_idempotent(self, s):
        assert s.union(s) == s

    @given(structures(), structures())
    @settings(max_examples=60)
    def test_union_commutative(self, s1, s2):
        assert s1.union(s2) == s2.union(s1)

    @given(structures())
    @settings(max_examples=60)
    def test_restrict_to_all_nodes_is_identity(self, s):
        assert s.restrict(s.nodes) == s

    @given(structures())
    @settings(max_examples=60)
    def test_fresh_copy_is_isomorphic(self, s):
        copy, mapping = s.with_fresh_nodes("c")
        assert len(copy) == len(s)
        assert copy.size() == s.size()
        assert is_homomorphism(s, copy, mapping)

    @given(structures())
    @settings(max_examples=60)
    def test_size_counts_facts(self, s):
        assert s.size() == len(s.unary_facts) + len(s.binary_facts)


class TestHomomorphismLaws:
    @given(structures())
    @settings(max_examples=50)
    def test_identity_hom(self, s):
        identity = {node: node for node in s.nodes}
        assert is_homomorphism(s, s, identity)

    @given(structures(), structures())
    @settings(max_examples=40, deadline=None)
    def test_found_homs_are_homs(self, source, target):
        for hom in list(iter_homomorphisms(source, target))[:5]:
            assert is_homomorphism(source, target, hom)

    @given(structures())
    @settings(max_examples=40, deadline=None)
    def test_hom_into_union_superset(self, s):
        """Adding facts to the target never destroys a homomorphism."""
        extra = Structure(
            ["zz"], [UnaryFact("T", "zz")], []
        )
        bigger = s.union(extra)
        hom = find_homomorphism(s, bigger)
        assert hom is not None


class TestCactusCombinatorics:
    @given(st.integers(0, 2))
    @settings(max_examples=10, deadline=None)
    def test_segment_count_matches_buds(self, depth):
        one_cq = OneCQ.from_structure(zoo.q2())
        for cactus in iter_cactuses(one_cq, max_depth=depth):
            # Each budding adds exactly one segment.
            assert len(cactus.segments) == cactus.shape.segment_count()
            assert cactus.depth <= depth

    def test_cactus_structures_have_single_f(self):
        one_cq = OneCQ.from_structure(zoo.q2())
        for cactus in iter_cactuses(one_cq, max_depth=2):
            f_nodes = cactus.structure.nodes_with_label(
                "F"
            ) - cactus.structure.nodes_with_label("T")
            assert len(f_nodes) == 1
            assert cactus.root_focus in f_nodes


class TestProposition1:
    """Datalog closure == cactus embedding, on random instances."""

    @given(structures(max_nodes=5, max_edges=7))
    @settings(max_examples=25, deadline=None)
    def test_goal_agreement_q5(self, data):
        q = zoo.q5()
        programs = compile_programs(q)
        datalog_answer = evaluate(programs.pi, data).holds(programs.goal)
        cactus_answer = goal_certain_via_cactuses(
            OneCQ.from_structure(q), data, max_depth=len(data)
        )
        assert datalog_answer == cactus_answer

    @given(structures(max_nodes=5, max_edges=6))
    @settings(max_examples=20, deadline=None)
    def test_delta_equals_pi_on_random_data(self, data):
        q = zoo.q5()
        programs = compile_programs(q)
        datalog_answer = evaluate(programs.pi, data).holds(programs.goal)
        assert evaluate_branching(q, data).certain == datalog_answer

    @given(structures(max_nodes=4, max_edges=6))
    @settings(max_examples=15, deadline=None)
    def test_exhaustive_equals_branching(self, data):
        q = zoo.q3()
        assert (
            evaluate_exhaustive(q, data).certain
            == evaluate_branching(q, data).certain
        )


class TestMonotonicity:
    """Certain answers are monotone in the data (d-sirups are positive
    existential over the completed labellings)."""

    @given(structures(max_nodes=4, max_edges=5), structures(max_nodes=3, max_edges=4))
    @settings(max_examples=20, deadline=None)
    def test_certain_answer_monotone(self, small, extra):
        q = zoo.q5()
        merged = small.union(extra.rename({n: ("x", n) for n in extra.nodes}))
        if certain_answer(q, small):
            assert certain_answer(q, merged)
