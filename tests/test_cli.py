"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import _parse_cq_file, main


class TestParseCQFile:
    def test_parses_labels_and_edges(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("# a comment\nF(a)\nT(b)\n\nR(a, b)\n")
        q = _parse_cq_file(str(path))
        assert q.has_label("a", "F")
        assert q.has_label("b", "T")
        assert any(
            f.pred == "R" and f.src == "a" and f.dst == "b"
            for f in q.binary_facts
        )

    def test_rejects_ternary_atoms(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R(a, b, c)\n")
        with pytest.raises(ValueError, match="cannot parse"):
            _parse_cq_file(str(path))


class TestCommands:
    def test_zoo_lists_all_queries(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        for name in ("q1", "q4", "q8"):
            assert name in out

    def test_decide_zoo_query(self, capsys):
        assert main(["decide", "q5"]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "Theorem 9" in out

    def test_decide_file(self, tmp_path, capsys):
        path = tmp_path / "q.txt"
        path.write_text("F(a)\nT(b)\nR(a, c)\nR(c, b)\n")
        assert main(["decide", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Proposition 2" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "backend=" in out
        assert "effective_workers=" in out

    def test_global_flags_reach_session_config(self, capsys):
        assert main(
            ["--backend", "naive", "--workers", "2", "--no-cache", "config"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend='naive'" in out
        assert "workers=2" in out
        assert "hom_cache=False" in out

    def test_decide_with_backend_flag(self, capsys):
        assert main(["--backend", "naive", "decide", "q5"]) == 0
        assert "bounded" in capsys.readouterr().out

    def test_invalid_backend_flag_exits(self):
        with pytest.raises(SystemExit):
            main(["--backend", "simd", "config"])
