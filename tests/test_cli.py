"""The ``python -m repro`` command-line interface."""

import json
import sqlite3

import pytest

from repro.__main__ import _parse_cq_file, main


class TestParseCQFile:
    def test_parses_labels_and_edges(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text("# a comment\nF(a)\nT(b)\n\nR(a, b)\n")
        q = _parse_cq_file(str(path))
        assert q.has_label("a", "F")
        assert q.has_label("b", "T")
        assert any(
            f.pred == "R" and f.src == "a" and f.dst == "b"
            for f in q.binary_facts
        )

    def test_rejects_ternary_atoms(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("R(a, b, c)\n")
        with pytest.raises(ValueError, match="cannot parse"):
            _parse_cq_file(str(path))


class TestCommands:
    def test_zoo_lists_all_queries(self, capsys):
        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        for name in ("q1", "q4", "q8"):
            assert name in out

    def test_decide_zoo_query(self, capsys):
        assert main(["decide", "q5"]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "Theorem 9" in out

    def test_decide_file(self, tmp_path, capsys):
        path = tmp_path / "q.txt"
        path.write_text("F(a)\nT(b)\nR(a, c)\nR(c, b)\n")
        assert main(["decide", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Proposition 2" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_config_command(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "backend=" in out
        assert "effective_workers=" in out

    def test_global_flags_reach_session_config(self, capsys):
        assert main(
            ["--backend", "naive", "--workers", "2", "--no-cache", "config"]
        ) == 0
        out = capsys.readouterr().out
        assert "backend='naive'" in out
        assert "workers=2" in out
        assert "hom_cache=False" in out

    def test_decide_with_backend_flag(self, capsys):
        assert main(["--backend", "naive", "decide", "q5"]) == 0
        assert "bounded" in capsys.readouterr().out

    def test_invalid_backend_flag_exits(self):
        with pytest.raises(SystemExit):
            main(["--backend", "simd", "config"])


class TestConfigJson:
    def test_json_output_parses_and_is_complete(self, capsys):
        assert main(["config", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        for key in (
            "backend",
            "workers",
            "effective_workers",
            "cache_path",
            "service_host",
            "service_port",
            "service_queue_depth",
        ):
            assert key in data

    def test_json_matches_the_service_serializer(self, capsys, tmp_path):
        # satellite contract: the CLI and GET /v1/config share one
        # serializer, so flags resolve into the same wire document
        from repro.core.config import EngineConfig
        from repro.service.wire import config_to_json

        cd = str(tmp_path / "cache")
        assert main(["--backend", "naive", "--cache-dir", cd,
                     "config", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        want = config_to_json(
            EngineConfig.from_env(backend="naive", cache_dir=cd)
        )
        assert data == want


class TestEvalExitCodes:
    def test_known_answer_exits_0(self, capsys):
        assert main(["eval", "q2", "d1"]) == 0
        assert "False" in capsys.readouterr().out

    def test_governed_unknown_exits_3(self, monkeypatch, capsys):
        # exit 3 is the UNKNOWN code, distinct from FALSE (0) and
        # usage errors (2), so scripted callers can branch on it
        monkeypatch.setenv("REPRO_HOM_FUEL", "1")
        assert main(["eval", "q2", "d2"]) == 3
        out = capsys.readouterr().out
        assert "UNKNOWN" in out and "fuel" in out

    def test_weights_misuse_still_exits_2(self, tmp_path, capsys):
        weights = tmp_path / "w.txt"
        weights.write_text("R(a, b) = 2\n")
        assert main(
            ["eval", "q2", "d1", "--semiring", "why",
             "--weights", str(weights)]
        ) == 2


class TestCacheCommands:
    def warm(self, cache_dir):
        # any evaluated query writes hom rows through to the store
        assert main(["--cache-dir", cache_dir, "eval", "q2", "d1"]) == 0

    def test_cache_without_store_exits_2(self, capsys):
        assert main(["--cache-dir", "", "cache", "stats"]) == 2
        assert "no durable store" in capsys.readouterr().err

    def test_stats_reports_occupancy(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        self.warm(cd)
        capsys.readouterr()
        assert main(["--cache-dir", cd, "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "enabled=True" in out
        assert "repro_store.sqlite" in out
        assert "entries=" in out

    def test_clear_drops_every_entry(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        self.warm(cd)
        capsys.readouterr()
        assert main(["--cache-dir", cd, "cache", "clear"]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["--cache-dir", cd, "cache", "stats"]) == 0
        assert "entries=0" in capsys.readouterr().out

    def test_verify_clean_store_exits_0(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        self.warm(cd)
        capsys.readouterr()
        assert main(["--cache-dir", cd, "cache", "verify"]) == 0
        assert "dropped 0 corrupt" in capsys.readouterr().out

    def test_verify_drops_corrupt_rows_and_exits_1(self, tmp_path, capsys):
        cd = str(tmp_path / "cache")
        self.warm(cd)
        # flip every row's checksum behind the store's back
        db = str(tmp_path / "cache" / "repro_store.sqlite")
        conn = sqlite3.connect(db)
        with conn:
            conn.execute("UPDATE kv SET crc = crc + 1")
        conn.close()
        capsys.readouterr()
        assert main(["--cache-dir", cd, "cache", "verify"]) == 1
        out = capsys.readouterr().out
        assert "dropped" in out and "dropped 0 corrupt" not in out
        # the sweep healed the store: a second verify is clean
        assert main(["--cache-dir", cd, "cache", "verify"]) == 0
