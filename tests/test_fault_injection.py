"""The resilient execution layer: budgets, tri-state answers, and the
fault-injection story of the pool runtime.

Three layers under test:

* **Cooperative governance** — ``deadline_ms`` / ``hom_fuel`` /
  ``cactus_max_nodes`` must stop hostile runs early with a typed
  reason, never a hang, and known partial results must survive.
* **Worker-fault recovery** — injected crashes, hangs and corrupt
  results (``EngineConfig.fault_plan``) must recover to answers
  identical to the serial path, via requeue-once and then in-parent
  quarantine.
* **Degradation bookkeeping** — submit failures fall back cleanly,
  the failure/cooldown state machine heals, the wire LRU evicts, and
  ``Session.close`` is idempotent.
"""

import time

import pytest

from repro import (
    Answer,
    Budget,
    CactusBudgetExceeded,
    DeadlineExceeded,
    EngineConfig,
    EngineError,
    FuelExhausted,
    OneCQ,
    ResourceExhausted,
    Session,
    zoo,
)
from repro.core import runtime
from repro.core.boundedness import (
    Verdict,
    probe_boundedness,
    ucq_certain_answers,
    ucq_rewriting,
)
from repro.core.homengine import evaluate_batch_governed
from repro.core.runtime import (
    parallel_evaluate_batch,
    parallel_screen,
    parallel_screen_stream,
    to_wire,
)
from repro.core.structure import path_structure
from repro.workloads import instance_family, random_instance


def faulty_session(fault_plan, **overrides):
    base = dict(
        backend="bitset",
        workers=2,
        parallel_min=4,
        pool_cooldown_ms=0,
        fault_plan=fault_plan,
    )
    base.update(overrides)
    return Session(EngineConfig(**base))


QUERY = path_structure(["T", "", "F"])
FAMILY = instance_family(12, 14, 26, seed=31)


# ----------------------------------------------------------------------
# Taxonomy + Answer semantics
# ----------------------------------------------------------------------


class TestTaxonomy:
    def test_hierarchy(self):
        for cls in (DeadlineExceeded, FuelExhausted, CactusBudgetExceeded):
            assert issubclass(cls, ResourceExhausted)
            assert issubclass(cls, EngineError)

    def test_from_reason_round_trip(self):
        for cls, reason in (
            (DeadlineExceeded, "deadline"),
            (FuelExhausted, "fuel"),
            (CactusBudgetExceeded, "cactus-nodes"),
        ):
            exc = ResourceExhausted.from_reason(reason)
            assert type(exc) is cls and exc.reason == reason
        other = ResourceExhausted.from_reason("elsewhere")
        assert type(other) is ResourceExhausted
        assert other.reason == "elsewhere"

    def test_answer_known_compares_like_bool(self):
        assert Answer.TRUE == True  # noqa: E712
        assert Answer.FALSE == False  # noqa: E712
        assert Answer.TRUE != False  # noqa: E712
        assert bool(Answer.TRUE) and not bool(Answer.FALSE)
        assert hash(Answer.TRUE) == hash(True)

    def test_answer_unknown_refuses_bool(self):
        u = Answer.unknown("fuel")
        assert not u.known and u.reason == "fuel"
        with pytest.raises(EngineError):
            bool(u)
        assert u != True and u != False  # noqa: E712
        assert u == Answer.unknown("fuel")
        assert u != Answer.unknown("deadline")

    def test_answer_wire_round_trip(self):
        for entry in (True, False, "deadline", "fuel"):
            decoded = Answer.decode(entry)
            if isinstance(entry, bool):
                assert decoded is entry
            else:
                assert isinstance(decoded, Answer)
                assert decoded.encode() == entry

    def test_budget_fuel_and_deadline(self):
        b = Budget(fuel=3)
        b.charge(2)
        b.charge()
        with pytest.raises(FuelExhausted):
            b.charge()
        expired = Budget(deadline_ms=1)
        time.sleep(0.005)
        with pytest.raises(DeadlineExceeded):
            expired.checkpoint()

    def test_ungoverned_config_resolves_no_budget(self):
        assert Budget.from_config(EngineConfig()) is None
        assert not EngineConfig().governed
        assert EngineConfig(hom_fuel=5).governed
        assert EngineConfig(deadline_ms=5).governed


# ----------------------------------------------------------------------
# Cooperative governance surfaces
# ----------------------------------------------------------------------


class TestGovernedSurfaces:
    def test_certain_answer_fuel_unknown(self):
        with Session(EngineConfig(hom_fuel=1)) as s:
            got = s.certain_answer(zoo.q2(), zoo.d2())
            assert isinstance(got, Answer) and got.reason == "fuel"

    def test_certain_answer_matches_ungoverned_when_budget_suffices(self):
        with Session(EngineConfig(hom_fuel=10_000_000)) as s:
            assert s.certain_answer(zoo.q2(), zoo.d2()) is True
            assert s.certain_answer(zoo.q2(), zoo.d1()) is False

    def test_deep_probe_deadline(self):
        # The acceptance scenario: a deep probe over an unbounded sirup
        # that runs for tens of seconds ungoverned must come back
        # UNKNOWN within ~2x the deadline instead of hanging.
        q4 = OneCQ.from_structure(zoo.q4())
        with Session(EngineConfig(deadline_ms=2000)) as s:
            started = time.monotonic()
            probe = probe_boundedness(q4, probe_depth=150, session=s)
            elapsed = time.monotonic() - started
        assert probe.verdict is Verdict.INCONCLUSIVE
        assert probe.reason == "deadline"
        assert elapsed < 4.5
        assert "deadline" in probe.describe()

    def test_span2_probe_deadline_instead_of_shape_explosion(self):
        # Span >= 2 shape universes grow as a tower; deep enumeration
        # used to spend unbounded time *materialising subshapes* before
        # yielding anything.  The budget is charged inside the
        # recursion, so even this run stops at the deadline.
        q2 = OneCQ.from_structure(zoo.q2())
        with Session(EngineConfig(deadline_ms=1000)) as s:
            started = time.monotonic()
            probe = probe_boundedness(q2, probe_depth=40, session=s)
            elapsed = time.monotonic() - started
        assert probe.verdict is Verdict.INCONCLUSIVE
        assert probe.reason == "deadline"
        assert elapsed < 3.0

    def test_probe_untouched_when_budget_suffices(self):
        q5 = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(deadline_ms=60_000)) as s:
            probe = probe_boundedness(q5, probe_depth=3, session=s)
        assert probe.verdict is Verdict.BOUNDED and probe.depth == 1
        assert probe.reason is None

    def test_cactus_max_nodes_cap(self):
        one_cq = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(cactus_max_nodes=6)) as s:
            with pytest.raises(CactusBudgetExceeded):
                list(s.iter_cactuses(one_cq, max_depth=4))

    def test_evaluate_batch_governed_keeps_partial_results(self):
        with Session(EngineConfig()) as s:
            oracle = [
                s.has_homomorphism(QUERY, d) for d in FAMILY
            ]
        with Session(EngineConfig(hom_fuel=120)) as s:
            entries = evaluate_batch_governed(QUERY, FAMILY, session=s)
        assert len(entries) == len(FAMILY)
        seen_unknown = False
        for i, entry in enumerate(entries):
            if isinstance(entry, str):
                seen_unknown = True
                assert entry == "fuel"
            else:
                # Every known answer must be exact, and exhaustion is
                # a suffix: nothing known comes after the first UNKNOWN.
                assert not seen_unknown
                assert entry == oracle[i]

    def test_ucq_certain_answers_tri_state(self):
        one_cq = OneCQ.from_structure(path_structure(["T", "T", "F"]))
        ucq = ucq_rewriting(one_cq, 2)
        family = instance_family(8, 5, 7, seed=9)
        with Session(EngineConfig()) as s:
            want = ucq_certain_answers(ucq, family, session=s)
        with Session(EngineConfig(hom_fuel=10_000_000)) as s:
            roomy = ucq_certain_answers(ucq, family, session=s)
        assert roomy == want
        with Session(EngineConfig(hom_fuel=1)) as s:
            starved = ucq_certain_answers(ucq, family, session=s)
        # Exhaustion may leave cheap refutations known (arc consistency
        # decides some instances without burning fuel), but every known
        # entry must be sound and at least one slot must be UNKNOWN.
        assert any(isinstance(e, Answer) and not e.known for e in starved)
        for got, oracle in zip(starved, want):
            if not isinstance(got, Answer):
                assert got == oracle

    def test_governed_parallel_batch_decodes(self):
        with faulty_session((), hom_fuel=1) as s:
            got = parallel_evaluate_batch(QUERY, FAMILY, session=s)
        assert len(got) == len(FAMILY)
        assert all(isinstance(e, Answer) and e.reason == "fuel" for e in got)
        with faulty_session((), hom_fuel=10_000_000) as s:
            roomy = parallel_evaluate_batch(QUERY, FAMILY, session=s)
        with Session(EngineConfig(workers=1)) as s:
            want = parallel_evaluate_batch(QUERY, FAMILY, session=s)
        assert roomy == want


# ----------------------------------------------------------------------
# Fault injection: crash / hang / corrupt
# ----------------------------------------------------------------------


def serial_screen(queries, family):
    with Session(EngineConfig(workers=1)) as s:
        return [
            [s.has_homomorphism(q, d) for d in family] for q in queries
        ]


class TestFaultInjection:
    def test_crash_mid_screen_recovers_identically(self):
        queries = [QUERY, path_structure(["T", "F"])]
        want = serial_screen(queries, FAMILY)
        with faulty_session((("crash", 0),)) as s:
            got = parallel_screen(queries, FAMILY, session=s)
            info = s.pool_info()
        assert got == want
        assert info.last_fallback is not None

    def test_crash_mid_stream_recovers_identically(self):
        queries = [QUERY]
        want = serial_screen(queries, FAMILY)
        with faulty_session((("crash", 0),)) as s:
            shards = sorted(
                parallel_screen_stream(queries, FAMILY, session=s),
                key=lambda sh: sh.start,
            )
        got = [[] for _ in queries]
        for shard in shards:
            for qi, row in enumerate(shard.answers):
                got[qi].extend(row)
        assert got == want

    def test_hang_hits_shard_timeout_and_completes_serially(self):
        want = serial_screen([QUERY], FAMILY)[0]
        with faulty_session(
            (("hang", 0),), shard_timeout_ms=200
        ) as s:
            started = time.monotonic()
            got = parallel_evaluate_batch(QUERY, FAMILY, session=s)
            elapsed = time.monotonic() - started
            info = s.pool_info()
        assert got == want
        assert elapsed < 30  # nowhere near the 600s injected sleep
        assert info.last_fallback is not None

    def test_corrupt_result_detected_and_recovered(self):
        want = serial_screen([QUERY], FAMILY)[0]
        with faulty_session((("corrupt", 0),)) as s:
            got = parallel_evaluate_batch(QUERY, FAMILY, session=s)
            info = s.pool_info()
        assert got == want
        assert info.last_fallback == "WorkerFailure"

    def test_late_fault_only_hits_scheduled_task(self):
        # A fault deep in the schedule leaves earlier tasks untouched;
        # answers are identical either way.
        want = serial_screen([QUERY], FAMILY)[0]
        with faulty_session((("corrupt", 1),)) as s:
            got = parallel_evaluate_batch(QUERY, FAMILY, session=s)
        assert got == want

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(fault_plan=(("explode", 0),))
        with pytest.raises(ValueError):
            EngineConfig(fault_plan=(("crash", -1),))
        # "kill" (uncatchable SIGKILL, unlike "crash"'s os._exit) is a
        # valid mode, and "jobfail" is the service tier's fault.
        assert EngineConfig(fault_plan=(("kill", 0),)).fault_plan
        assert EngineConfig(fault_plan=(("jobfail", 2),)).fault_plan

    def test_fault_plan_from_env(self):
        # The chaos bench drives a live server through REPRO_FAULT_PLAN;
        # malformed entries are dropped, not fatal — crashing the server
        # they were meant to test would defeat the point.
        config = EngineConfig.from_env(
            {"REPRO_FAULT_PLAN": "jobfail:0, kill:2,bogus,crash:x,hang:-1"}
        )
        assert config.fault_plan == (("jobfail", 0), ("kill", 2))
        assert EngineConfig.from_env({}).fault_plan == ()

    def test_kill_9_worker_recovers_identically(self):
        # SIGKILL is uncatchable: the worker dies without unwinding,
        # the pool breaks, and recovery must still reproduce the
        # serial answers exactly.
        queries = [QUERY, path_structure(["T", "F"])]
        want = serial_screen(queries, FAMILY)
        with faulty_session((("kill", 0),)) as s:
            got = parallel_screen(queries, FAMILY, session=s)
            info = s.pool_info()
        assert got == want
        assert info.last_fallback is not None

    def test_kill_mid_stream_keeps_shards_contiguous(self):
        # A worker SIGKILLed mid-stream must not tear the shard
        # contract: the yielded shards still jointly cover
        # range(len(FAMILY)) exactly once — no gap, no overlap, no
        # re-yield of already-streamed indices — and reassembling them
        # reproduces the serial oracle.
        queries = [QUERY, path_structure(["T", "F"])]
        want = serial_screen(queries, FAMILY)
        with faulty_session((("kill", 0),)) as s:
            shards = list(s.screen(queries, FAMILY, stream=True))
            info = s.pool_info()
        spans = sorted((sh.start, sh.stop) for sh in shards)
        assert spans[0][0] == 0 and spans[-1][1] == len(FAMILY)
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))
        got = [[None] * len(FAMILY) for _ in queries]
        for sh in shards:
            for qi, row in enumerate(sh.answers):
                got[qi][sh.start : sh.stop] = row
        assert got == want
        assert info.last_fallback is not None

    def test_kill_9_worker_with_store_stays_consistent(self, tmp_path):
        # A worker SIGKILLed while sharing the durable store must not
        # tear it: answers match the serial oracle and a full checksum
        # sweep afterwards drops nothing (WAL atomicity).
        queries = [QUERY, path_structure(["T", "F"])]
        want = serial_screen(queries, FAMILY)
        with faulty_session(
            (("kill", 0),), cache_dir=str(tmp_path / "cache")
        ) as s:
            got = parallel_screen(queries, FAMILY, session=s)
            checked, dropped = s.store.verify()
        assert got == want
        assert dropped == 0 and checked > 0


# ----------------------------------------------------------------------
# Degradation paths
# ----------------------------------------------------------------------


class TestDegradationPaths:
    def test_submit_failure_falls_back_and_heals(self):
        with faulty_session(()) as s:
            rt = s.pool
            want = parallel_evaluate_batch(QUERY, FAMILY, session=s)
            assert rt.info().running
            # Shut the executor down behind the runtime's back: the
            # next submit raises RuntimeError, which must requeue on a
            # fresh pool, not crash and not silently drop shards.
            rt._pool.shutdown(wait=True)
            got = parallel_evaluate_batch(QUERY, FAMILY, session=s)
            info = rt.info()
        assert got == want
        assert info.failures == 0  # the retry round completed clean
        assert info.last_fallback == "submit:RuntimeError"

    def test_failure_cooldown_state_machine(self):
        rt = runtime.PoolRuntime(
            EngineConfig(workers=2, pool_cooldown_ms=60)
        )
        try:
            assert rt.get_pool() is not None
            rt.mark_failed("one")
            assert rt.info().failures == 1 and not rt.info().broken
            rt.mark_failed("two")
            info = rt.info()
            assert info.failures == 2 and info.broken
            assert info.last_fallback == "two"
            assert rt.get_pool() is None  # quarantined
            time.sleep(0.08)
            assert not rt.info().broken  # cooldown elapsed
            assert rt.get_pool() is not None  # health probe respawns
            assert rt.info().failures == 0
        finally:
            rt.shutdown()

    def test_mark_healthy_clears_streak(self):
        rt = runtime.PoolRuntime(EngineConfig(workers=2))
        try:
            rt.mark_failed("hiccup")
            rt.mark_healthy()
            assert rt.info().failures == 0
            assert rt.get_pool() is not None
        finally:
            rt.shutdown()

    def test_configure_clears_quarantine(self):
        rt = runtime.PoolRuntime(
            EngineConfig(workers=2, pool_cooldown_ms=60_000)
        )
        rt.mark_failed("a")
        rt.mark_failed("b")
        assert rt.info().broken
        rt.configure(workers=2)
        info = rt.info()
        assert not info.broken and info.failures == 0
        assert info.last_fallback is None

    def test_wire_cache_lru_eviction(self):
        wires = [
            to_wire(random_instance(4, 6, seed)) for seed in range(3)
        ]
        runtime._WIRE_CACHE.clear()
        try:
            a = runtime.from_wire_cached(wires[0], limit=2)
            runtime.from_wire_cached(wires[1], limit=2)
            assert runtime.from_wire_cached(wires[0], limit=2) is a
            runtime.from_wire_cached(wires[2], limit=2)  # evicts wires[1]
            assert len(runtime._WIRE_CACHE) == 2
            assert wires[1] not in runtime._WIRE_CACHE
            assert wires[0] in runtime._WIRE_CACHE
        finally:
            runtime._WIRE_CACHE.clear()

    def test_session_close_idempotent(self):
        s = Session(EngineConfig(workers=2, parallel_min=4))
        parallel_evaluate_batch(QUERY, FAMILY, session=s)
        s.close()
        s.close()  # must be a no-op, not an error
        assert not s.pool.info().running
        # Reuse after close re-arms it: pools respawn lazily.
        parallel_evaluate_batch(QUERY, FAMILY, session=s)
        s.close()
        assert not s.pool.info().running

    def test_atexit_sweep_registered(self):
        rt = runtime.PoolRuntime(EngineConfig(workers=2))
        assert rt in runtime._LIVE_RUNTIMES
        assert rt.get_pool() is not None
        runtime._shutdown_all_pools()
        assert not rt.info().running
