"""The Theorem 3 construction: query shape, trigger semantics, Lemma 4."""


from repro.atm.encoding import desired_tree_cut, gamma_depth
from repro.atm.machine import (
    iter_computation_trees,
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)
from repro.atm.params import EncodingParams
from repro.atm.reduction import (
    FRAME_AA,
    FRAME_AT,
    FRAME_TA,
    build_query,
    formula_incorrectness,
    gadget_applies_at,
    gadget_inventory,
    segment_verdict,
    skeleton_boundedness_semantics,
)
from repro.circuits.library import build_library
from repro.core.cactus import structurally_focused
from repro.core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes
from repro.atm.encoding import incorrect_nodes, reject_main_nodes

_QUERY_CACHE: dict = {}


def build_cached(machine_factory, word="1"):
    key = (machine_factory.__name__, word)
    if key not in _QUERY_CACHE:
        _QUERY_CACHE[key] = build_query(machine_factory(), word)
    return _QUERY_CACHE[key]


class TestGadgetInventory:
    def test_all_kinds_present(self):
        machine = toy_reject_machine()
        params = EncodingParams.from_machine(machine, 2)
        library = build_library(params, machine, ["1"])
        gadgets = gadget_inventory(library)
        kinds = {g.kind for g in gadgets}
        assert kinds == {"g1", "g2", "g3", "g4", "g5", "g6", "g7"}

    def test_must_branch_has_both_frames(self):
        machine = toy_reject_machine()
        params = EncodingParams.from_machine(machine, 2)
        library = build_library(params, machine, ["1"])
        gadgets = gadget_inventory(library)
        g2 = [g for g in gadgets if g.kind == "g2"]
        assert len(g2) == 2 * len(library.must_branch)
        assert {g.frame_type for g in g2} == {FRAME_AT, FRAME_TA}

    def test_non_branch_gadgets_are_aa(self):
        machine = toy_reject_machine()
        params = EncodingParams.from_machine(machine, 2)
        library = build_library(params, machine, ["1"])
        for gadget in gadget_inventory(library):
            if gadget.kind != "g2":
                assert gadget.frame_type == FRAME_AA


class TestQueryShape:
    def test_one_cq_census(self):
        result = build_cached(toy_reject_machine)
        q = result.query
        assert len(solitary_f_nodes(q)) == 1
        assert len(solitary_t_nodes(q)) == 2
        assert len(twin_nodes(q)) == len(result.gadgets)

    def test_query_is_dag(self):
        result = build_cached(toy_reject_machine)
        assert result.query.is_dag()

    def test_query_structurally_focused(self):
        result = build_cached(toy_reject_machine)
        assert structurally_focused(result.one_cq)

    def test_size_stats(self):
        result = build_cached(toy_reject_machine)
        stats = result.size_stats()
        assert stats["gadgets"] == len(result.gadgets)
        assert stats["twins"] == stats["gadgets"]
        assert stats["solitary_ts"] == 2
        assert stats["nodes"] > stats["gadgets"]

    def test_each_gadget_has_unique_edge_predicate(self):
        result = build_cached(toy_reject_machine)
        preds = {
            p for p in result.query.binary_predicates if p.startswith("Rg")
        }
        assert len(preds) == len(result.gadgets)

    def test_polynomial_growth_in_word(self):
        small = build_cached(toy_reject_machine, "1").size_stats()
        large = build_cached(toy_reject_machine, "10").size_stats()
        assert large["nodes"] >= small["nodes"]
        # Same cells, one extra input symbol: growth stays modest
        # (well under quadratic in this regime).
        assert large["nodes"] <= 4 * small["nodes"]

    def test_connected(self):
        result = build_cached(toy_reject_machine)
        assert result.query.is_connected()


class TestTriggerSemantics:
    def setup_tree(self, machine_factory=toy_reject_machine):
        machine = machine_factory()
        params = EncodingParams.from_machine(machine, 2)
        library = build_library(params, machine, ["1"])
        comp = next(iter_computation_trees(machine, "1", 2, 16))
        depth = 9 + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, "1", comp, depth)
        return machine, params, library, tree

    def test_gadget_gating(self):
        machine, params, library, tree = self.setup_tree()
        gadgets = gadget_inventory(library)
        at = next(g for g in gadgets if g.frame_type == FRAME_AT)
        ta = next(g for g in gadgets if g.frame_type == FRAME_TA)
        aa = next(g for g in gadgets if g.frame_type == FRAME_AA)
        # Root branches both ways: only AA gadgets apply.
        assert gadget_applies_at(aa, tree, ())
        assert not gadget_applies_at(at, tree, ())
        assert not gadget_applies_at(ta, tree, ())
        # A node with only a 0-child is a q^-_AT segment.
        only_zero = next(
            n for n in tree.nodes() if tree.children(n) == (0,)
        )
        assert gadget_applies_at(at, tree, only_zero)
        assert not gadget_applies_at(ta, tree, only_zero)

    def test_desired_tree_segments_not_cuttable(self):
        machine, params, library, tree = self.setup_tree(toy_accept_machine)
        for node in sorted(tree.nodes()):
            if len(node) >= 9:
                continue
            verdict = segment_verdict(library, machine, ["1"], tree, node)
            assert not verdict.cuttable, (node, verdict.fired)

    def test_reject_segment_is_cuttable_but_not_incorrect(self):
        machine, params, library, tree = self.setup_tree(toy_reject_machine)
        rejecting = reject_main_nodes(params, machine, "1", tree, 9)
        assert rejecting
        verdict = segment_verdict(
            library, machine, ["1"], tree, rejecting[0]
        )
        assert verdict.reject and verdict.cuttable and not verdict.incorrect

    def test_formula_incorrectness_matches_reference(self):
        machine, params, library, tree = self.setup_tree()
        frontier = 9
        assert formula_incorrectness(library, machine, ["1"], tree, frontier) == []
        mutated = tree.remove_subtree((1, 1, 1, 0))
        assert formula_incorrectness(
            library, machine, ["1"], mutated, frontier
        ) == incorrect_nodes(params, machine, "1", mutated, frontier)


class TestLemma4Semantics:
    """The operational boundedness argument on toy machines."""

    def test_rejecting_machine_bounded(self):
        report = skeleton_boundedness_semantics(toy_reject_machine(), "1")
        assert report.rejects
        assert report.cut_bound is not None

    def test_accepting_machine_unbounded(self):
        report = skeleton_boundedness_semantics(toy_accept_machine(), "1")
        assert not report.rejects
        assert report.accepting_clean_depth is not None

    def test_alternation_machine_tracks_input(self):
        machine = toy_alternation_machine()
        rejecting = skeleton_boundedness_semantics(machine, "0")
        assert rejecting.rejects
        accepting = skeleton_boundedness_semantics(machine, "1")
        assert not accepting.rejects
        assert accepting.accepting_clean_depth is not None

    def test_report_describe(self):
        report = skeleton_boundedness_semantics(toy_reject_machine(), "1")
        assert "bounded" in report.describe()
