"""01-trees, configuration/computation trees, correctness predicates."""

import pytest

from repro.atm.encoding import (
    CHAIN_PREFIX,
    GAMMA_PREFIX,
    TreeBuilder,
    ZeroOneTree,
    beta_plus_cut,
    beta_tree,
    desired_tree_cut,
    gamma_depth,
    gamma_paths,
    gamma_tree,
    ideal_tree_cut,
    incorrect_nodes,
    is_correct,
    is_good,
    is_main_path,
    is_properly_branching,
    is_properly_computing,
    is_properly_initialising,
    node_correctness_report,
    read_config_bits,
    read_full_configuration,
    reject_main_nodes,
    represents_reject,
    suffix_decomposition,
)
from repro.atm.machine import (
    iter_computation_trees,
    toy_accept_machine,
    toy_reject_machine,
)
from repro.atm.params import EncodingParams, encode_configuration
from repro.atm.machine import initial_configuration


def setup_toy(machine_factory=toy_reject_machine, word="1", cells=2):
    machine = machine_factory()
    params = EncodingParams.from_machine(machine, cells)
    trees = list(iter_computation_trees(machine, word, cells, 16))
    return machine, params, trees


class TestZeroOneTree:
    def test_prefix_closure(self):
        tree = ZeroOneTree([(0, 1, 1)])
        assert (0,) in tree
        assert (0, 1) in tree
        assert () in tree

    def test_children_and_leaves(self):
        tree = ZeroOneTree([(0,), (1, 0)])
        assert tree.children(()) == (0, 1)
        assert tree.is_leaf((0,))
        assert not tree.is_leaf((1,))

    def test_cut(self):
        tree = ZeroOneTree([(0, 1, 1, 0)])
        cut = tree.cut(2)
        assert cut.depth() == 2
        assert (0, 1) in cut
        assert (0, 1, 1) not in cut

    def test_subtree_accumulates_context(self):
        tree = ZeroOneTree([(0, 1, 1)], context=(1, 1))
        sub = tree.subtree((0,))
        assert sub.context == (1, 1, 0)
        assert (1,) in sub
        assert sub.full_label_path((1, 1)) == (1, 1, 0, 1, 1)

    def test_remove_subtree(self):
        tree = ZeroOneTree([(0, 0), (0, 1), (1,)])
        pruned = tree.remove_subtree((0, 1))
        assert (0, 1) not in pruned
        assert (0, 0) in pruned

    def test_builder_keeps_closure(self):
        builder = TreeBuilder()
        builder.add_path((1, 1, 0))
        tree = builder.build()
        assert (1,) in tree and (1, 1) in tree

    def test_nodes_at_depth(self):
        tree = ZeroOneTree([(0, 0), (0, 1), (1,)])
        assert sorted(tree.nodes_at_depth(2)) == [(0, 0), (0, 1)]


class TestSuffixDecomposition:
    def test_main_node_anchor(self):
        shape = suffix_decomposition((0, 0, 1, 0))
        assert shape is not None
        assert shape.blocks == 0 and shape.tail == ()
        assert shape.k() == 4

    def test_blocks_counted(self):
        labels = (0, 0, 1, 1) + (1, 1, 1, 0) * 2 + (1, 1)
        shape = suffix_decomposition(labels)
        assert shape.blocks == 2 and shape.tail == (1, 1)
        assert shape.valid

    def test_anchor_is_last_001(self):
        labels = (0, 0, 1, 0) + (1, 1, 1, 1) + (0, 0, 1, 1)
        shape = suffix_decomposition(labels)
        assert shape.anchor == 8
        assert shape.blocks == 0 and shape.tail == ()

    def test_trailing_001_is_tail_not_anchor(self):
        labels = (0, 0, 1, 0) + (0, 0, 1)
        shape = suffix_decomposition(labels)
        assert shape.anchor == 0
        assert shape.tail == (0, 0, 1)

    def test_no_anchor(self):
        assert suffix_decomposition((1, 1, 1, 1)) is None

    def test_invalid_tail(self):
        labels = (0, 0, 1, 0) + (1, 0)
        shape = suffix_decomposition(labels)
        assert not shape.valid

    def test_is_main_path(self):
        assert is_main_path((1, 0, 0, 1, 1))
        assert not is_main_path((1, 1, 1, 0))
        assert not is_main_path((0, 1))


class TestGammaTree:
    def test_depth_and_leaf_count(self):
        machine, params, _ = setup_toy()
        config = initial_configuration(machine, "1", params.cells)
        bits = encode_configuration(params, config, 0)
        tree = gamma_tree(params, bits)
        assert tree.depth() == gamma_depth(params) == 4 * (params.d + 1)
        leaves = [n for n in tree.nodes() if tree.is_leaf(n)]
        assert len(leaves) == params.seq_len

    def test_bits_readable_back(self):
        machine, params, _ = setup_toy()
        config = initial_configuration(machine, "1", params.cells)
        bits = encode_configuration(params, config, 1)
        tree = gamma_tree(params, bits)
        read = read_config_bits(params, tree, ())
        assert read == {i: bits[i] for i in range(params.seq_len)}

    def test_wrong_bit_count_rejected(self):
        _, params, _ = setup_toy()
        with pytest.raises(ValueError):
            gamma_paths(params, (0,) * (params.seq_len - 1))

    def test_paths_share_address_prefixes(self):
        machine, params, _ = setup_toy()
        config = initial_configuration(machine, "1", params.cells)
        bits = encode_configuration(params, config, 0)
        tree = gamma_tree(params, bits)
        # The first three edges are the shared 111 chain.
        assert tree.children(()) == (1,)
        assert tree.children((1,)) == (1,)
        assert tree.children((1, 1)) == (1,)
        # The fourth edge branches on the first address bit.
        assert tree.children((1, 1, 1)) == (0, 1)


class TestBetaTrees:
    def test_beta_tree_main_nodes(self):
        machine, params, trees = setup_toy()
        tree = beta_tree(params, machine, trees[0])
        # Root is a main node (via context when given one).
        assert tree.children(()) == (0, 1)
        chain_end = CHAIN_PREFIX
        assert tree.children(chain_end) == (0, 1)

    def test_beta_tree_child_configs_readable(self):
        machine, params, trees = setup_toy()
        tree = beta_tree(params, machine, trees[0])
        for branch in (0, 1):
            main = CHAIN_PREFIX + (branch,)
            decoded = read_full_configuration(params, tree, main)
            assert decoded is not None
            config, parent_bit = decoded
            # Both grandchildren record the OR-choice as parent bit.
            assert parent_bit == trees[0].children[0][0]

    def test_beta_plus_repeats_halting(self):
        machine, params, trees = setup_toy()
        depth = 12 + gamma_depth(params)
        tree = beta_plus_cut(params, machine, trees[0], depth)
        # Children of halting mains repeat the halting configuration.
        main = CHAIN_PREFIX + (0,)
        child = main + CHAIN_PREFIX + (0,)
        first = read_full_configuration(params, tree, main)
        second = read_full_configuration(params, tree, child)
        assert first is not None and second is not None
        assert first[0] == second[0]
        assert second[1] == 0

    def test_ideal_tree_restarts_below_bit_leaves(self):
        machine, params, trees = setup_toy(toy_accept_machine)
        gd = gamma_depth(params)
        tree = ideal_tree_cut(
            params, machine, "1", lambda _i: trees[0], gd + 4 + gd + 4
        )
        # Find a bit-leaf of the root configuration tree and check the
        # restart below it carries c_init.
        bits = encode_configuration(
            params,
            initial_configuration(machine, "1", params.cells),
            0,
        )
        leaf = gamma_paths(params, bits)[0]
        restart = leaf + CHAIN_PREFIX + (0,)
        assert restart in tree
        decoded = read_full_configuration(params, tree, restart)
        assert decoded is not None
        config, parent_bit = decoded
        assert config == initial_configuration(machine, "1", params.cells)
        assert parent_bit == 0

    def test_desired_tree_has_chain_context(self):
        machine, params, trees = setup_toy()
        tree = desired_tree_cut(params, machine, "1", trees[0], 20)
        assert tree.context == (0, 0, 1, 0)
        assert is_main_path(tree.full_label_path(()))


class TestCorrectnessPredicates:
    def make_tree(self, machine_factory=toy_reject_machine, frontier=9):
        machine, params, trees = setup_toy(machine_factory)
        depth = frontier + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, "1", trees[0], depth)
        return machine, params, tree, frontier

    def test_desired_tree_is_everywhere_correct(self):
        machine, params, tree, frontier = self.make_tree()
        assert incorrect_nodes(params, machine, "1", tree, frontier) == []

    def test_goodness_fails_on_long_gamma_only_path(self):
        _, params, _ = setup_toy()
        window = 4 * params.d + 11
        tree = ZeroOneTree([(1,) * (window + 2)])
        assert not is_good(params, tree, (1,) * (window + 1))
        # Shallow nodes are vacuously good.
        assert is_good(params, tree, (1,) * (window - 1))

    def test_branching_violation_detected(self):
        machine, params, tree, frontier = self.make_tree()
        # Remove the 1-child of the root main node: the root stops
        # branching into its gamma tree and becomes incorrect.
        mutated = tree.remove_subtree((1,))
        assert not is_properly_branching(params, mutated, ())
        assert () in incorrect_nodes(params, machine, "1", mutated, frontier)

    def test_leaves_below_frontier_are_incorrect(self):
        machine, params, tree, frontier = self.make_tree()
        mutated = tree.remove_subtree((0, 0))
        report = node_correctness_report(params, machine, "1", mutated, (0,))
        assert not report["properly_branching"]

    def test_computing_violation_detected(self):
        machine, params, tree, frontier = self.make_tree()
        # Flip one stored content bit of a child configuration: pick a
        # gamma value leaf under the child main and reroute it.
        child_main = CHAIN_PREFIX + (0,)
        bits = read_config_bits(params, tree, child_main)
        address = params.cell_offset(0)
        # Rebuild the path to that address and flip the value edge.
        path = []
        for i in range(params.d):
            path.extend(GAMMA_PREFIX)
            path.append((address >> (params.d - 1 - i)) & 1)
        path.extend(GAMMA_PREFIX)
        stem = child_main + tuple(path)
        old_leaf = stem + (bits[address],)
        mutated = tree.remove_subtree(old_leaf).add_paths(
            [stem + (1 - bits[address],)]
        )
        assert not is_properly_computing(params, machine, mutated, ())

    def test_init_violation_detected(self):
        machine, params, trees = setup_toy(toy_accept_machine)
        gd = gamma_depth(params)
        tree = ideal_tree_cut(
            params, machine, "1", lambda _i: trees[0], 2 * gd + 12
        )
        bits = encode_configuration(
            params,
            initial_configuration(machine, "1", params.cells),
            0,
        )
        leaf = gamma_paths(params, bits)[0]
        restart = leaf + CHAIN_PREFIX + (0,)
        assert is_properly_initialising(params, machine, "1", tree, restart)
        # A restart is NOT properly initialising for a different word.
        assert not is_properly_initialising(
            params, machine, "0", tree, restart
        )

    def test_reject_mains_found_for_rejecting_machine(self):
        machine, params, tree, frontier = self.make_tree(toy_reject_machine)
        rejecting = reject_main_nodes(params, machine, "1", tree, frontier)
        assert rejecting
        for node in rejecting:
            assert represents_reject(params, machine, tree, node)

    def test_accepting_machine_has_no_reject_mains(self):
        machine, params, tree, frontier = self.make_tree(toy_accept_machine)
        assert reject_main_nodes(params, machine, "1", tree, frontier) == []

    def test_report_keys(self):
        machine, params, tree, _ = self.make_tree()
        report = node_correctness_report(params, machine, "1", tree, ())
        assert set(report) == {
            "good",
            "properly_branching",
            "properly_initialising",
            "properly_computing",
            "represents_reject",
        }
        assert all(
            report[key]
            for key in ("good", "properly_branching", "properly_computing")
        )

    def test_is_correct_conjunction(self):
        machine, params, tree, frontier = self.make_tree()
        for node in tree.nodes():
            if len(node) >= frontier:
                continue
            assert is_correct(params, machine, "1", tree, node)


class TestClaim41:
    """Mutating a desired-tree cut always produces an incorrect node."""

    def test_structure_mutations_detected(self):
        machine, params, trees = setup_toy()
        frontier = 9
        depth = frontier + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, "1", trees[0], depth)
        # Remove each shallow subtree in turn; some ancestor must become
        # incorrect (Claim 4.1: correct nodes characterise desired cuts).
        candidates = [n for n in tree.nodes() if 0 < len(n) <= 6]
        for node in candidates:
            mutated = tree.remove_subtree(node)
            assert incorrect_nodes(params, machine, "1", mutated, frontier), (
                f"undetected mutation at {node}"
            )

    def test_content_bit_flips_detected(self):
        machine, params, trees = setup_toy()
        frontier = 9
        depth = frontier + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, "1", trees[0], depth)
        child_main = CHAIN_PREFIX + (1,)
        bits = read_config_bits(params, tree, child_main)
        for address in sorted(params.meaningful_addresses()):
            path = []
            for i in range(params.d):
                path.extend(GAMMA_PREFIX)
                path.append((address >> (params.d - 1 - i)) & 1)
            path.extend(GAMMA_PREFIX)
            stem = child_main + tuple(path)
            mutated = tree.remove_subtree(
                stem + (bits[address],)
            ).add_paths([stem + (1 - bits[address],)])
            assert incorrect_nodes(
                params, machine, "1", mutated, frontier
            ), f"undetected bit flip at address {address}"

    def test_padding_bit_flips_not_flagged(self):
        """Padding positions are unconstrained by design."""
        machine, params, trees = setup_toy()
        frontier = 9
        depth = frontier + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, "1", trees[0], depth)
        padding = [
            a
            for a in range(params.seq_len)
            if a not in params.meaningful_addresses()
        ]
        assert padding, "toy parameters should include padding"
        child_main = CHAIN_PREFIX + (1,)
        bits = read_config_bits(params, tree, child_main)
        address = padding[0]
        path = []
        for i in range(params.d):
            path.extend(GAMMA_PREFIX)
            path.append((address >> (params.d - 1 - i)) & 1)
        path.extend(GAMMA_PREFIX)
        stem = child_main + tuple(path)
        mutated = tree.remove_subtree(stem + (bits[address],)).add_paths(
            [stem + (1 - bits[address],)]
        )
        assert incorrect_nodes(params, machine, "1", mutated, frontier) == []
