"""The zigzag machine: left moves and clamping through the pipeline."""

import pytest

from repro.atm.encoding import (
    desired_tree_cut,
    gamma_depth,
    incorrect_nodes,
)
from repro.atm.machine import (
    accepts,
    find_accepting_tree,
    iter_computation_trees,
    toy_zigzag_machine,
)
from repro.atm.params import EncodingParams
from repro.atm.reduction import skeleton_boundedness_semantics
from repro.circuits.gather import fires_at
from repro.circuits.library import step_formula

FRONTIER = 13


class TestZigzagSemantics:
    @pytest.mark.parametrize(
        "word,expected",
        [("10", True), ("11", True), ("00", False), ("01", False)],
    )
    def test_accepts_iff_first_cell_one(self, word, expected):
        assert accepts(toy_zigzag_machine(), word, 2, 32) is expected

    def test_head_goes_right_then_left(self):
        machine = toy_zigzag_machine()
        tree = find_accepting_tree(machine, "10", 2, 32)
        # Follow one branch: OR levels visit heads 0, 1, 0.
        heads = []
        node = tree
        while True:
            heads.append(node.config.head)
            if not node.children:
                break
            (_, and_node) = node.children[0]
            (_, node) = and_node.children[0]
        assert heads == [0, 1, 0]


class TestZigzagEncoding:
    def build(self, word):
        machine = toy_zigzag_machine()
        params = EncodingParams.from_machine(machine, 2)
        comp = next(iter_computation_trees(machine, word, 2, 32))
        depth = FRONTIER + gamma_depth(params) + 8
        tree = desired_tree_cut(params, machine, word, comp, depth)
        return machine, params, tree

    def test_desired_tree_correct(self):
        machine, params, tree = self.build("10")
        assert incorrect_nodes(params, machine, "10", tree, FRONTIER) == []

    def test_step_formula_silent_with_left_moves(self):
        machine, params, tree = self.build("10")
        check = step_formula(params, machine)
        for node in sorted(tree.nodes()):
            if len(node) >= FRONTIER:
                continue
            assert not fires_at(check, tree, node), node

    def test_step_formula_detects_wrong_left_move(self):
        machine, params, tree = self.build("10")
        check = step_formula(params, machine)
        from repro.atm.encoding import CHAIN_PREFIX
        from tests.test_circuits_library import flip_bit

        # Break the head bit of a grandchild two levels down, where the
        # left move happens (l_or at head 1 -> l_and at head 0).
        deep_main = CHAIN_PREFIX + (0,) + CHAIN_PREFIX + (0,)
        mutated = flip_bit(params, tree, deep_main, params.n_q)
        parent_main = CHAIN_PREFIX + (0,)
        assert fires_at(check, mutated, parent_main)


class TestZigzagLemma4:
    def test_good_input_unbounded(self):
        report = skeleton_boundedness_semantics(
            toy_zigzag_machine(), "10", cells=2, tree_limit=4
        )
        assert not report.rejects

    def test_bad_input_bounded(self):
        report = skeleton_boundedness_semantics(
            toy_zigzag_machine(), "00", cells=2, tree_limit=4
        )
        assert report.rejects
