"""Three-way backend cross-validation: naive / bitset / matrix.

The ``matrix`` backend (dense boolean-matrix-semiring AC-3 + forward
checking) must enumerate exactly the same homomorphism sets as the
``naive`` oracle and the ``bitset`` default, across random instances
from :mod:`repro.workloads.generators` and under every declarative
constraint (seeds, restrict_image, node_domains, forbid, node_filter).
The suite also pins the numpy-free fallback: with numpy unavailable,
``backend="matrix"`` silently runs the pure-python int-bitset search
and keeps agreeing.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import structure as structure_mod
from repro.core.homengine import (
    BACKENDS,
    _count_homomorphisms,
    has_homomorphism,
    iter_homomorphisms,
    matrix_backend_available,
)
from repro.core.homomorphism import is_homomorphism
from repro.core.structure import (
    MatrixIndex,
    Structure,
    StructureBuilder,
    path_structure,
)
from repro.workloads.generators import (
    random_ditree_cq,
    random_instance,
    random_lambda_cq,
)


def canon(homs):
    """Order-insensitive canonical form of a hom enumeration."""
    return sorted(
        tuple(sorted(h.items(), key=lambda kv: str(kv[0]))) for h in homs
    )


def three_way(q, d, **kwargs):
    """Canonical enumerations of all three backends, as a dict."""
    return {
        backend: canon(iter_homomorphisms(q, d, backend=backend, **kwargs))
        for backend in BACKENDS
    }


class TestThreeWayCrossValidation:
    def test_backends_registered(self):
        assert BACKENDS == ("naive", "bitset", "matrix", "decomp")

    def test_random_instances_enumerate_identically(self):
        """Identical hom sets on 60 random (query, instance) pairs from
        the workload generators, across all three backends."""
        nonempty = 0
        for seed in range(60):
            q = random_ditree_cq(5, seed) or random_instance(
                4, 5, seed, preds=("R", "S")
            )
            d = random_instance(9, 16, seed + 20_000, preds=("R", "S"))
            results = three_way(q, d)
            assert results["naive"] == results["bitset"] == results["matrix"], (
                f"backend mismatch at seed {seed}"
            )
            nonempty += bool(results["naive"])
        assert nonempty > 0  # the sample is not vacuous

    def test_lambda_cqs_against_larger_targets(self):
        checked = 0
        for seed in range(40):
            q = random_lambda_cq(6, seed)
            if q is None:
                continue
            d = random_instance(30, 80, seed + 7, preds=("R",))
            results = three_way(q, d)
            assert results["naive"] == results["matrix"]
            assert results["bitset"] == results["matrix"]
            checked += 1
        assert checked >= 10

    def test_seeded_and_restricted_agree(self):
        for seed in range(15):
            q = random_instance(4, 6, seed, preds=("R",))
            d = random_instance(7, 12, seed + 500, preds=("R",))
            some_q = next(iter(sorted(q.nodes, key=str)))
            restrict = frozenset(list(sorted(d.nodes, key=str))[:4])
            for image in sorted(d.nodes, key=str):
                results = three_way(
                    q, d, seed={some_q: image}, restrict_image=restrict
                )
                assert results["naive"] == results["bitset"]
                assert results["naive"] == results["matrix"]

    def test_node_domains_forbid_and_filter_agree(self):
        for seed in range(15):
            q = random_instance(4, 5, seed)
            d = random_instance(7, 11, seed + 900)
            nodes_q = sorted(q.nodes, key=str)
            nodes_d = sorted(d.nodes, key=str)
            constraints = {
                "node_domains": {nodes_q[0]: frozenset(nodes_d[::2])},
                "forbid": frozenset(nodes_d[:2]),
            }
            results = three_way(q, d, **constraints)
            assert results["naive"] == results["bitset"]
            assert results["naive"] == results["matrix"]
            filtered = canon(
                iter_homomorphisms(
                    q,
                    d,
                    node_filter=lambda x, v: v == nodes_d[-1],
                    backend="matrix",
                )
            )
            oracle = canon(
                iter_homomorphisms(
                    q,
                    d,
                    node_filter=lambda x, v: v == nodes_d[-1],
                    backend="naive",
                )
            )
            assert filtered == oracle

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_existence_and_count_agree(self, seed):
        q = random_instance(4, 6, seed)
        d = random_instance(6, 10, seed + 1)
        verdicts = {
            b: has_homomorphism(q, d, backend=b, use_cache=False)
            for b in BACKENDS
        }
        assert len(set(verdicts.values())) == 1
        counts = {
            b: _count_homomorphisms(q, d, backend=b, use_cache=False)
            for b in BACKENDS
        }
        assert len(set(counts.values())) == 1

    def test_every_matrix_hom_verifies(self):
        for seed in range(20):
            q = random_instance(4, 6, seed)
            d = random_instance(6, 12, seed + 77)
            for hom in iter_homomorphisms(q, d, backend="matrix"):
                assert is_homomorphism(q, d, hom)

    def test_self_loops(self):
        b = StructureBuilder()
        b.add_node("x", "T")
        b.add_edge("x", "x", "R")
        q = b.build()
        b2 = StructureBuilder()
        b2.add_node("a", "T")
        b2.add_edge("a", "a", "R")
        b2.add_node("c", "T")
        b2.add_edge("c", "a", "R")
        d = b2.build()
        results = three_way(q, d)
        assert results["naive"] == results["bitset"] == results["matrix"]
        assert len(results["matrix"]) == 1  # only the true self-loop

    def test_degenerate_structures(self):
        empty = Structure()
        q = path_structure(["T"])
        assert canon(iter_homomorphisms(empty, q, backend="matrix")) == [()]
        assert canon(iter_homomorphisms(q, empty, backend="matrix")) == []
        assert canon(iter_homomorphisms(empty, empty, backend="matrix")) == [
            ()
        ]


class TestMatrixIndex:
    def test_adjacency_and_labels(self):
        b = StructureBuilder()
        b.add_node("x", "T")
        b.add_node("y", "F")
        b.add_edge("x", "y", "R")
        s = b.build()
        if not matrix_backend_available():
            pytest.skip("numpy not installed")
        idx = s.matrix_index
        xi, yi = idx.index["x"], idx.index["y"]
        assert bool(idx.adj["R"][xi, yi]) and not bool(idx.adj["R"][yi, xi])
        assert bool(idx.adj_t["R"][yi, xi])
        assert bool(idx.label_nodes["T"][xi])
        assert bool(idx.has_out["R"][xi]) and not bool(idx.has_out["R"][yi])
        assert bool(idx.has_in["R"][yi])
        assert idx.mask_of(["x", "zzz-not-a-node"]).sum() == 1

    def test_memoised_per_structure(self):
        if not matrix_backend_available():
            pytest.skip("numpy not installed")
        s = random_instance(6, 9, seed=1)
        assert s.matrix_index is s.matrix_index

    def test_extended_structures_rebuild(self):
        if not matrix_backend_available():
            pytest.skip("numpy not installed")
        base = path_structure(["T", "F"])
        _ = base.matrix_index
        ext = base.extended(add_nodes=["z"])
        idx = ext.matrix_index  # rebuilt, not transferred
        assert idx.n == len(ext.nodes)


class TestNumpyFreeFallback:
    @pytest.fixture
    def no_numpy(self, monkeypatch):
        """Simulate a numpy-free environment for the duration of a test."""
        monkeypatch.setattr(structure_mod, "_numpy_module", None)
        monkeypatch.setattr(structure_mod, "_numpy_checked", True)

    def test_matrix_backend_falls_back(self, no_numpy):
        assert not matrix_backend_available()
        for seed in range(10):
            q = random_instance(4, 5, seed)
            d = random_instance(7, 11, seed + 333)
            fallback = canon(iter_homomorphisms(q, d, backend="matrix"))
            oracle = canon(iter_homomorphisms(q, d, backend="naive"))
            assert fallback == oracle

    def test_matrix_index_raises_without_numpy(self, no_numpy):
        s = path_structure(["T"])
        with pytest.raises(RuntimeError):
            MatrixIndex(s)
