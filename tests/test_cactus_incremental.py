"""The incremental cactus construction engine vs the from-scratch oracle.

Three layers of cross-validation:

* ``Structure.extended`` (the copy-on-write substrate) against a fresh
  ``Structure`` built from the same final fact sets — equality, multiset
  fingerprints, and every transferred index (bitset masks, per-predicate
  neighbour maps, the hom engine's compiled source plan);
* ``CactusFactory`` against ``build_cactus_from_scratch`` — every
  incrementally-built cactus must be node-for-node identical (equal
  structures, equal fingerprints, equal skeleton bookkeeping) across
  random shapes and depths;
* the rewired consumers — batch UCQ screening, the cactus d-sirup
  strategy, interned Λ-segment copies — against their one-at-a-time or
  ground-truth counterparts.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    A,
    OneCQ,
    Shape,
    Structure,
    StructureBuilder,
    build_cactus,
    build_cactus_from_scratch,
    cactus_factory,
    chain_shape,
    clear_cactus_caches,
    evaluate_exhaustive,
    evaluate_via_cactuses,
    full_shape,
    iter_cactuses,
    path_structure,
    prune_shape,
    ucq_certain_answer,
    ucq_certain_answers,
    ucq_rewriting,
)
from repro.core import homengine
from repro.core.boundedness import probe_family_boundedness
from repro.core.structure import BinaryFact, BitsetIndex, UnaryFact
from repro.workloads import instance_family, random_instance


def q_tf() -> OneCQ:
    return OneCQ.from_structure(path_structure(["T", "F"]))


def q_ttf() -> OneCQ:
    return OneCQ.from_structure(path_structure(["T", "T", "F"]))


def q_gadget() -> OneCQ:
    """A branchier span-2 query with a twin, an extra label and a second
    predicate, to exercise label/pred bookkeeping during budding."""
    b = StructureBuilder()
    b.add_node("f", "F")
    b.add_node("t0", "T")
    b.add_node("t1", "T", "B")
    b.add_node("twin", "F", "T")
    b.add_node("mid")
    b.add_edge("t0", "mid", "R")
    b.add_edge("mid", "f", "R")
    b.add_edge("t1", "f", "S")
    b.add_edge("twin", "mid", "S")
    return OneCQ.from_structure(b.build())


def shape_strategy(span: int, depth: int) -> st.SearchStrategy:
    base = st.just(Shape.leaf())
    if depth == 0 or span == 0:
        return base
    child = shape_strategy(span, depth - 1)
    return st.one_of(
        base,
        st.dictionaries(
            st.integers(0, span - 1), child, min_size=1, max_size=span
        ).map(Shape.make),
    )


# ----------------------------------------------------------------------
# Structure.extended
# ----------------------------------------------------------------------


def _random_base_and_delta(seed: int):
    rng = random.Random(seed)
    base = random_instance(rng.randint(2, 7), rng.randint(1, 10), seed)
    nodes = sorted(base.nodes, key=str)
    fresh = [f"new{i}" for i in range(rng.randint(0, 2))]
    pool = nodes + fresh
    add_unary = [
        UnaryFact(rng.choice("TFAB"), rng.choice(pool))
        for _ in range(rng.randint(0, 3))
    ]
    remove_unary = [f for f in base.unary_facts if rng.random() < 0.3]
    add_binary = [
        BinaryFact(rng.choice("RS"), rng.choice(pool), rng.choice(pool))
        for _ in range(rng.randint(0, 3))
    ]
    return base, fresh, add_unary, remove_unary, add_binary


class TestStructureExtended:
    @given(st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_matches_from_scratch(self, seed):
        base, fresh, add_u, rem_u, add_b = _random_base_and_delta(seed)
        # Force every lazy index first so extension transfers them all.
        _ = base.fingerprint, base.bitset_index, base.out_by_pred
        ext = base.extended(
            add_nodes=fresh,
            add_unary=add_u,
            add_binary=add_b,
            remove_unary=rem_u,
        )
        scratch = Structure(ext.nodes, ext.unary_facts, ext.binary_facts)
        assert ext == scratch
        assert ext.fingerprint == scratch.fingerprint
        assert hash(ext) == hash(scratch)
        for node in ext.nodes:
            assert ext.labels(node) == scratch.labels(node)
            assert dict(ext.out_by_pred(node)) == dict(
                scratch.out_by_pred(node)
            )
            assert dict(ext.in_by_pred(node)) == dict(
                scratch.in_by_pred(node)
            )

    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_bitset_index_transfer_exact(self, seed):
        base, fresh, add_u, rem_u, add_b = _random_base_and_delta(seed)
        _ = base.node_order, base.bitset_index
        ext = base.extended(
            add_nodes=fresh,
            add_unary=add_u,
            add_binary=add_b,
            remove_unary=rem_u,
        )
        transferred = ext.bitset_index
        rebuilt = BitsetIndex(ext)  # same node_order, fresh masks
        assert transferred.nodes == rebuilt.nodes
        assert transferred.index == rebuilt.index
        assert transferred.full_mask == rebuilt.full_mask
        assert transferred.label_nodes == rebuilt.label_nodes
        assert transferred.succ == rebuilt.succ
        assert transferred.pred == rebuilt.pred
        assert transferred.has_out == rebuilt.has_out
        assert transferred.has_in == rebuilt.has_in

    @given(st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_source_plan_transfer_exact(self, seed):
        base, fresh, add_u, rem_u, add_b = _random_base_and_delta(seed)
        _ = base.node_order
        homengine._source_plan(base)  # compile the base plan first
        ext = base.extended(
            add_nodes=fresh,
            add_unary=add_u,
            add_binary=add_b,
            remove_unary=rem_u,
        )
        plan = homengine._source_plan(ext)
        fresh_plan = homengine._SourcePlan(ext)
        assert plan.nodes == fresh_plan.nodes
        assert plan.labels == fresh_plan.labels
        assert plan.out_preds == fresh_plan.out_preds
        assert plan.in_preds == fresh_plan.in_preds
        assert sorted(plan.edges) == sorted(fresh_plan.edges)
        for mine, theirs in zip(plan.out_adj, fresh_plan.out_adj):
            assert sorted(mine) == sorted(theirs)
        for mine, theirs in zip(plan.in_adj, fresh_plan.in_adj):
            assert sorted(mine) == sorted(theirs)

    def test_extension_appends_to_interning_order(self):
        base = path_structure(["T", "F"])
        order = base.node_order
        ext = base.extended(add_nodes=["zz"], add_unary=[UnaryFact(A, "zz")])
        assert ext.node_order[: len(order)] == order
        assert set(ext.node_order) == ext.nodes

    def test_empty_delta_returns_self(self):
        base = path_structure(["T", "F"])
        assert base.extended() is base
        assert base.extended(add_unary=base.unary_facts) is base

    def test_union_and_relabel_still_agree_with_semantics(self):
        p1 = path_structure(["T", ""], prefix="a")
        p2 = path_structure(["", "F"], prefix="b")
        u = p1.union(p2)
        assert u == Structure(
            p1.nodes | p2.nodes,
            p1.unary_facts | p2.unary_facts,
            p1.binary_facts | p2.binary_facts,
        )
        r = p1.relabel_node("a0", remove=["T"], add=["A", "B"])
        assert r.labels("a0") == frozenset({"A", "B"})
        assert r.fingerprint == Structure(
            r.nodes, r.unary_facts, r.binary_facts
        ).fingerprint


# ----------------------------------------------------------------------
# Incremental construction vs the from-scratch oracle
# ----------------------------------------------------------------------


def _assert_same_cactus(one_cq: OneCQ, shape: Shape) -> None:
    inc = build_cactus(one_cq, shape)
    ref = build_cactus_from_scratch(one_cq, shape)
    assert inc.structure == ref.structure
    assert inc.structure.fingerprint == ref.structure.fingerprint
    assert inc.segments.keys() == ref.segments.keys()
    for seg_id, mine in inc.segments.items():
        theirs = ref.segments[seg_id]
        assert mine.parent == theirs.parent
        assert mine.bud_index == theirs.bud_index
        assert mine.depth == theirs.depth
        assert mine.budded == theirs.budded
        assert mine.path == theirs.path
        assert mine.var_map == theirs.var_map


class TestIncrementalMatchesScratch:
    @given(st.integers(0, 500), st.data())
    @settings(max_examples=80, deadline=None)
    def test_random_shapes_isomorphic(self, seed, data):
        one_cq = random.Random(seed).choice([q_tf(), q_ttf(), q_gadget()])
        shape = data.draw(shape_strategy(one_cq.span, 3))
        _assert_same_cactus(one_cq, shape)

    def test_deep_chains_and_full_shapes(self):
        _assert_same_cactus(q_tf(), chain_shape([0] * 7))
        _assert_same_cactus(q_ttf(), chain_shape([0, 1, 0, 1]))
        _assert_same_cactus(q_ttf(), full_shape(2, 3))
        _assert_same_cactus(q_gadget(), full_shape(2, 2))

    def test_whole_enumeration_matches(self):
        one_cq = q_ttf()
        for cactus in iter_cactuses(one_cq, 2):
            ref = build_cactus_from_scratch(one_cq, cactus.shape)
            assert cactus.structure == ref.structure
            assert cactus.structure.fingerprint == ref.structure.fingerprint

    def test_order_independence(self):
        # Building deep-first must give the same structures as the
        # enumeration order (prefixes materialised along the way).
        clear_cactus_caches()
        one_cq = q_ttf()
        deep = build_cactus(one_cq, full_shape(2, 3))
        ref = build_cactus_from_scratch(one_cq, full_shape(2, 3))
        assert deep.structure == ref.structure
        assert deep.structure.fingerprint == ref.structure.fingerprint


class TestFactoryCaching:
    def test_same_shape_same_object(self):
        one_cq = q_tf()
        a = build_cactus(one_cq, chain_shape([0, 0]))
        b = build_cactus(one_cq, chain_shape([0, 0]))
        assert a is b

    def test_iter_cactuses_reuses_cached_objects(self):
        one_cq = q_ttf()
        first = {c.shape: c for c in iter_cactuses(one_cq, 2)}
        for cactus in iter_cactuses(one_cq, 2):
            assert first[cactus.shape] is cactus

    def test_prefix_is_substructure_of_extension(self):
        one_cq = q_ttf()
        factory = cactus_factory(one_cq)
        deep_shape = full_shape(2, 2)
        shallow = factory.cactus(prune_shape(deep_shape, 1))
        deep = factory.cactus(deep_shape)
        # Path naming: the shallow cactus's binary facts survive verbatim.
        assert shallow.structure.binary_facts <= deep.structure.binary_facts
        assert shallow.structure.nodes <= deep.structure.nodes

    def test_clear_cactus_caches(self):
        one_cq = q_tf()
        a = build_cactus(one_cq, Shape.leaf())
        clear_cactus_caches()
        b = build_cactus(one_cq, Shape.leaf())
        assert a is not b
        assert a.structure == b.structure

    def test_sigma_structure_memoised(self):
        cactus = build_cactus(q_tf(), chain_shape([0]))
        assert cactus.sigma_structure() is cactus.sigma_structure()
        sigma = cactus.sigma_structure()
        assert sigma.has_label(cactus.root_focus, A)
        assert not sigma.has_label(cactus.root_focus, "F")

    def test_segment_copies_interned(self):
        from repro.ditree.lambda_cq import segment_structure

        one_cq = q_ttf()
        s1, m1 = segment_structure(one_cq, frozenset({0}), False, "u")
        s2, m2 = segment_structure(one_cq, frozenset({0}), False, "u")
        assert s1 is s2 and m1 is m2
        s3, _ = segment_structure(one_cq, frozenset({0}), False, "v")
        assert s3 is not s1  # different tag, different node namespace


# ----------------------------------------------------------------------
# Incremental sigma structures and cross-factory interning
# ----------------------------------------------------------------------


class TestIncrementalSigma:
    @given(st.integers(0, 500), st.data())
    @settings(max_examples=40, deadline=None)
    def test_sigma_matches_relabel_oracle(self, seed, data):
        one_cq = random.Random(seed).choice([q_tf(), q_ttf(), q_gadget()])
        shape = data.draw(shape_strategy(one_cq.span, 3))
        cactus = build_cactus(one_cq, shape)
        sigma = cactus.sigma_structure()
        oracle = build_cactus_from_scratch(one_cq, shape)
        reference = oracle.structure.relabel_node(
            oracle.root_focus, remove=["F"], add=[A]
        )
        assert sigma == reference
        assert sigma.fingerprint == reference.fingerprint

    def test_sigma_deep_chain_shares_prefix_facts(self):
        clear_cactus_caches()
        one_cq = q_tf()
        shallow = build_cactus(one_cq, chain_shape([0, 0]))
        deep = build_cactus(one_cq, chain_shape([0, 0, 0]))
        # The sigma family is built by the same delta as the cactus
        # family, so a prefix's sigma facts survive verbatim.
        assert (
            shallow.sigma_structure().binary_facts
            <= deep.sigma_structure().binary_facts
        )

    def test_sigma_on_scratch_cactus_still_works(self):
        oracle = build_cactus_from_scratch(q_ttf(), full_shape(2, 2))
        sigma = oracle.sigma_structure()
        assert sigma.has_label(oracle.root_focus, A)
        assert not sigma.has_label(oracle.root_focus, "F")


class TestStructureIntern:
    def test_fresh_factories_share_structures(self):
        from repro.core.cactus import CactusFactory, iter_shapes

        clear_cactus_caches()
        one_cq = q_ttf()
        shapes = list(iter_shapes(one_cq.span, 2))
        f1 = CactusFactory(one_cq)
        f2 = CactusFactory(one_cq)
        for shape in shapes:
            assert f1.cactus(shape).structure is f2.cactus(shape).structure

    def test_content_equal_queries_share(self):
        from repro.core.cactus import CactusFactory

        clear_cactus_caches()
        # Distinct but content-equal OneCQ values intern under one key.
        a = OneCQ.from_structure(path_structure(["T", "T", "F"]))
        b = OneCQ.from_structure(path_structure(["T", "T", "F"]))
        assert a.query is not b.query
        shape = full_shape(a.span, 2)
        assert (
            CactusFactory(a).cactus(shape).structure
            is CactusFactory(b).cactus(shape).structure
        )

    def test_different_queries_do_not_share(self):
        from repro.core.cactus import CactusFactory

        clear_cactus_caches()
        a, b = q_tf(), q_ttf()
        sa = CactusFactory(a).cactus(chain_shape([0])).structure
        sb = CactusFactory(b).cactus(chain_shape([0])).structure
        assert sa != sb

    def test_clear_structure_intern(self):
        from repro.core.cactus import CactusFactory, clear_structure_intern

        clear_cactus_caches()
        one_cq = q_tf()
        shape = chain_shape([0])
        first = CactusFactory(one_cq).cactus(shape).structure
        clear_structure_intern()
        second = CactusFactory(one_cq).cactus(shape).structure
        assert first is not second
        assert first == second
        assert first.fingerprint == second.fingerprint

    def test_interned_cactuses_match_oracle(self):
        from repro.core.cactus import CactusFactory, iter_shapes

        clear_cactus_caches()
        one_cq = q_gadget()
        shapes = list(iter_shapes(one_cq.span, 2))
        CactusFactory(one_cq)  # warm nothing
        warm = CactusFactory(one_cq)
        for shape in shapes:
            warm.cactus(shape)
        hits = CactusFactory(one_cq)  # every shape now interns
        for shape in shapes:
            cactus = hits.cactus(shape)
            ref = build_cactus_from_scratch(one_cq, shape)
            assert cactus.structure == ref.structure
            assert (
                cactus.structure.fingerprint == ref.structure.fingerprint
            )
            # sigma falls back to the relabel on intern hits and stays
            # correct.
            assert cactus.sigma_structure() == ref.sigma_structure()


# ----------------------------------------------------------------------
# Rewired consumers
# ----------------------------------------------------------------------


class TestBatchScreening:
    def test_ucq_certain_answers_matches_one_at_a_time(self):
        one_cq = q_ttf()
        ucq = ucq_rewriting(one_cq, 2)
        family = instance_family(12, 5, 7, seed=9)
        batch = ucq_certain_answers(ucq, family)
        single = [ucq_certain_answer(ucq, data) for data in family]
        assert batch == single
        assert any(batch) and not all(batch)  # the family is non-trivial

    def test_probe_family_boundedness_roundtrip(self):
        from repro import zoo

        one_cq = OneCQ.from_structure(zoo.q5())  # bounded at depth 1
        family = instance_family(8, 4, 5, seed=3)
        answers = probe_family_boundedness(one_cq, family, depth=1)
        expected = [
            ucq_certain_answer(ucq_rewriting(one_cq, 1), data)
            for data in family
        ]
        assert answers == expected

    def test_probe_family_boundedness_refuses_unbounded(self):
        # T -> F is not bounded: the rewriting would silently under-
        # approximate, so the API must refuse instead.
        with pytest.raises(ValueError):
            probe_family_boundedness(q_tf(), instance_family(2, 4, 5, 3), 1)

    def test_empty_family(self):
        assert ucq_certain_answers(ucq_rewriting(q_tf(), 1), []) == []


class TestCactusStrategy:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_exhaustive_ground_truth(self, seed):
        one_cq = random.Random(seed).choice([q_tf(), q_ttf()])
        data = random_instance(
            4, 6, seed, label_weights={"T": 2, "F": 1, "A": 2, "": 3}
        )
        via_cactus = evaluate_via_cactuses(one_cq.query, data)
        ground = evaluate_exhaustive(one_cq.query, data)
        assert via_cactus.certain == ground.certain, data.describe()

    def test_rejects_non_one_cq(self):
        two_f = path_structure(["F", "F"])
        with pytest.raises(ValueError):
            evaluate_via_cactuses(two_f, path_structure(["T"]))
