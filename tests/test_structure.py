"""Unit tests for the labelled-digraph substrate."""

import pytest

from repro.core import (
    BinaryFact,
    Structure,
    StructureBuilder,
    UnaryFact,
    path_structure,
)
from repro.core.structure import F, R, S, T


def triangle() -> Structure:
    b = StructureBuilder()
    b.add_node("a", "T")
    b.add_node("b")
    b.add_node("c", "F")
    b.add_edge("a", "b", R)
    b.add_edge("b", "c", R)
    b.add_edge("c", "a", S)
    return b.build()


class TestConstruction:
    def test_nodes_inferred_from_facts(self):
        s = Structure((), (UnaryFact("T", "x"),), (BinaryFact(R, "x", "y"),))
        assert s.nodes == {"x", "y"}

    def test_explicit_isolated_node(self):
        s = Structure(("lonely",), (), ())
        assert "lonely" in s.nodes
        assert s.labels("lonely") == frozenset()

    def test_labels_and_lookup(self):
        s = triangle()
        assert s.labels("a") == {"T"}
        assert s.nodes_with_label("F") == {"c"}
        assert s.nodes_with_label("missing") == frozenset()
        assert s.has_label("a", "T")
        assert not s.has_label("a", "F")

    def test_edges_indexed(self):
        s = triangle()
        assert {f.dst for f in s.out_edges("a")} == {"b"}
        assert {f.src for f in s.in_edges("a")} == {"c"}
        assert list(s.successors("b")) == ["c"]
        assert list(s.predecessors("b")) == ["a"]

    def test_degree_and_sizes(self):
        s = triangle()
        assert s.degree("a") == 2
        assert len(s) == 3
        assert s.size() == 2 + 3

    def test_predicate_inventories(self):
        s = triangle()
        assert s.unary_predicates == {"T", "F"}
        assert s.binary_predicates == {R, S}

    def test_equality_and_hash(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())
        other = triangle().relabel_node("b", add=["T"])
        assert other != triangle()

    def test_repr_mentions_sizes(self):
        assert "3" in repr(triangle())


class TestDerivedStructures:
    def test_rename_merges_nodes(self):
        s = path_structure(["T", "", "F"])
        merged = s.rename({"v2": "v0"})
        assert len(merged) == 2
        assert merged.has_label("v0", "T")
        assert merged.has_label("v0", "F")

    def test_relabel_node(self):
        s = triangle()
        s2 = s.relabel_node("a", remove=["T"], add=["F", "A"])
        assert s2.labels("a") == {"F", "A"}
        # original untouched
        assert s.labels("a") == {"T"}

    def test_union_glues_shared_names(self):
        p1 = path_structure(["T", ""], prefix="x")
        p2 = path_structure(["", "F"], prefix="x")
        u = p1.union(p2)
        assert len(u) == 2
        assert u.has_label("x0", "T")
        assert u.has_label("x1", "F")

    def test_restrict_keeps_induced_edges(self):
        s = triangle()
        sub = s.restrict(["a", "b"])
        assert sub.nodes == {"a", "b"}
        assert len(sub.binary_facts) == 1

    def test_without_nodes(self):
        s = triangle()
        assert s.without_nodes(["c"]).nodes == {"a", "b"}

    def test_with_fresh_nodes_disjoint(self):
        s = triangle()
        copy, mapping = s.with_fresh_nodes("c1")
        assert copy.nodes.isdisjoint(s.nodes)
        assert copy.size() == s.size()
        assert mapping["a"] == ("c1", "a")


class TestGraphProperties:
    def test_connected(self):
        assert triangle().is_connected()
        two = Structure(("a", "b"), (), ())
        assert not two.is_connected()
        assert len(two.weak_components()) == 2

    def test_empty_structure_connected(self):
        assert Structure().is_connected()

    def test_dag_detection(self):
        assert path_structure(["", "", ""]).is_dag()
        assert not triangle().is_dag()

    def test_ditree_detection(self):
        assert path_structure(["T", "T", "F"]).is_ditree()
        assert not triangle().is_ditree()
        b = StructureBuilder()
        b.add_edge("r", "u")
        b.add_edge("r", "v")
        tree = b.build()
        assert tree.is_ditree()
        assert tree.ditree_root() == "r"

    def test_non_ditree_root_raises(self):
        two = Structure(("a", "b"), (), ())
        with pytest.raises(ValueError):
            two.ditree_root()

    def test_diamond_is_not_ditree(self):
        b = StructureBuilder()
        b.add_edge("r", "u")
        b.add_edge("r", "v")
        b.add_edge("u", "w")
        b.add_edge("v", "w")
        assert not b.build().is_ditree()


class TestBuilderAndPath:
    def test_fresh_nodes_are_unique(self):
        b = StructureBuilder()
        names = {b.fresh_node(hint="g") for _ in range(50)}
        assert len(names) == 50

    def test_path_structure_labels(self):
        q = path_structure([("F", "T"), "", "T"])
        assert q.labels("v0") == {"F", "T"}
        assert q.labels("v1") == frozenset()
        assert q.labels("v2") == {"T"}

    def test_path_structure_custom_preds(self):
        q = path_structure(["T", "T", "F"], preds=[S, R])
        assert {f.pred for f in q.out_edges("v0")} == {S}
        assert {f.pred for f in q.out_edges("v1")} == {R}

    def test_path_structure_pred_count_mismatch(self):
        with pytest.raises(ValueError):
            path_structure(["T", "F"], preds=[R, R])

    def test_describe_is_stable(self):
        assert triangle().describe() == triangle().describe()
        assert "T(a)" in triangle().describe()

    def test_add_structure(self):
        b = StructureBuilder()
        b.add_structure(triangle())
        assert b.build() == triangle()
