"""Tests for the Appendix F Λ-CQ FO/L decider."""

import random

import pytest

from repro import zoo
from repro.core import OneCQ, StructureBuilder, Verdict, probe_boundedness
from repro.core.cq import solitary_f_nodes, solitary_t_nodes
from repro.ditree import DitreeCQ
from repro.ditree.lambda_cq import (
    SegType,
    all_edges,
    all_types,
    analyse,
    compute_black,
    compute_blue,
    compute_completable,
    compute_infinite,
    decide_lambda,
    glue_segments,
    root_segment,
    segment_structure,
    successors,
    type_blowup,
)


class TestTypes:
    def test_type_counts_span1(self):
        # Root types: 2 (C = {} or {0}); internal: P={0}, i=0, C in {{},{0}}.
        types = all_types(1)
        assert len(types) == 4
        assert sum(1 for t in types if t.is_root) == 2

    def test_type_counts_span2(self):
        types = all_types(2)
        roots = [t for t in types if t.is_root]
        internal = [t for t in types if not t.is_root]
        assert len(roots) == 4
        # P must contain i: P in {{i}, {0,1}} for each i -> 2*2*4 = 16.
        assert len(internal) == 16

    def test_successors(self):
        t = SegType(frozenset(), None, frozenset({0}))
        succ = successors(t, 0, 1)
        assert len(succ) == 2
        assert all(s.parent_buds == frozenset({0}) for s in succ)
        assert all(s.in_label == 0 for s in succ)

    def test_successors_invalid_label(self):
        t = SegType(frozenset(), None, frozenset())
        with pytest.raises(ValueError):
            successors(t, 0, 1)

    def test_all_edges_span1(self):
        edges = all_edges(all_types(1), 1)
        # Types with C={0}: one root + one internal; each has 2 successors.
        assert len(edges) == 4

    def test_describe(self):
        t = SegType(frozenset({0}), 0, frozenset())
        assert t.describe() == "({0},0,{})"


class TestSegmentStructures:
    def test_root_segment_keeps_f(self):
        cq = OneCQ.from_structure(zoo.q4())
        s, focus = root_segment(cq, frozenset())
        assert s.has_label(focus, "F")

    def test_budded_t_becomes_a(self):
        cq = OneCQ.from_structure(zoo.q4())
        s, mapping = segment_structure(cq, frozenset({0}), root=True, tag="x")
        t_node = mapping[cq.solitary_ts[0]]
        assert s.has_label(t_node, "A")
        assert not s.has_label(t_node, "T")

    def test_nonroot_focus_is_a(self):
        cq = OneCQ.from_structure(zoo.q4())
        s, mapping = segment_structure(cq, frozenset(), root=False, tag="x")
        assert s.has_label(mapping[cq.focus], "A")

    def test_glue_identifies_focus_with_bud(self):
        cq = OneCQ.from_structure(zoo.q4())
        parts = {
            "p": segment_structure(cq, frozenset({0}), root=True, tag="p"),
            "c": segment_structure(cq, frozenset(), root=False, tag="c"),
        }
        glued, resolver = glue_segments(parts, [("p", 0, "c")], cq)
        assert resolver[("p", cq.solitary_ts[0])] == resolver[("c", cq.focus)]
        # q4 has 3 nodes; two glued segments share one node.
        assert len(glued) == 5

    def test_type_blowup_root_vs_internal(self):
        cq = OneCQ.from_structure(zoo.q4())
        root_t = SegType(frozenset(), None, frozenset())
        internal_t = SegType(frozenset({0}), 0, frozenset())
        assert type_blowup(cq, root_t).nodes_with_label("F")
        internal = type_blowup(cq, internal_t)
        assert not internal.nodes_with_label("F")


class TestColouring:
    def test_q4_has_no_black_types(self):
        # q4 is twin-free: a root segment's F cannot land anywhere.
        cq = OneCQ.from_structure(zoo.q4())
        types = all_types(1)
        assert compute_black(cq, types) == set()

    def test_q4_has_no_blue_types(self):
        cq = OneCQ.from_structure(zoo.q4())
        types = all_types(1)
        blue = compute_blue(cq, types, set())
        assert blue == set()

    def test_completable_all_uncoloured_for_q4(self):
        types = all_types(1)
        completable = compute_completable(types, set(), 1)
        assert {t for t in types if not t.is_root} == completable

    def test_infinite_types_bud(self):
        types = all_types(1)
        completable = compute_completable(types, set(), 1)
        infinite = compute_infinite(completable, 1)
        assert all(t.buds for t in infinite)
        assert infinite  # the self-looping budding type exists


class TestDecider:
    def test_q4_l_hard(self):
        decision = decide_lambda(DitreeCQ.from_structure(zoo.q4()))
        assert not decision.fo_rewritable
        assert decision.witness is not None

    def test_q5_fo(self):
        decision = decide_lambda(DitreeCQ.from_structure(zoo.q5()))
        assert decision.fo_rewritable

    def test_q8_fo(self):
        decision = decide_lambda(DitreeCQ.from_structure(zoo.q8()))
        assert decision.fo_rewritable

    def test_span0_trivially_fo(self):
        from repro.core import path_structure

        q = path_structure([("F", "T"), "F"])
        decision = decide_lambda(OneCQ.from_structure(q))
        assert decision.fo_rewritable
        assert "span 0" in decision.reason

    def test_rejects_non_lambda(self):
        with pytest.raises(ValueError):
            decide_lambda(DitreeCQ.from_structure(zoo.q3()))

    def test_accepts_raw_structure(self):
        decision = decide_lambda(zoo.q4())
        assert not decision.fo_rewritable

    def test_describe(self):
        decision = decide_lambda(zoo.q5())
        assert "FO-rewritable" in decision.describe()

    def test_analysis_tables_exposed(self):
        analysis = analyse(OneCQ.from_structure(zoo.q5()))
        assert analysis.stabilised_at >= 1
        assert analysis.cuttable  # q5 has cuttable edges (it is bounded)


def _random_lambda_tree(rng, n):
    parents = {i: rng.randrange(i) for i in range(1, n)}
    labels = {i: rng.choice(["", "FT", "FT", ""]) for i in range(n)}

    def anc(i):
        out = set()
        while i in parents:
            i = parents[i]
            out.add(i)
        return out

    pairs = [
        (f, t)
        for f in range(1, n)
        for t in range(1, n)
        if f != t and f not in anc(t) and t not in anc(f)
    ]
    if not pairs:
        return None
    f, t = rng.choice(pairs)
    labels[f] = "F"
    labels[t] = "T"
    b = StructureBuilder()
    for i in range(n):
        lab = labels[i]
        if lab == "FT":
            b.add_node(i, "F", "T")
        elif lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i, p in parents.items():
        b.add_edge(p, i)
    q = b.build()
    if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != 1:
        return None
    return q


class TestCrossValidation:
    """The decider agrees with the Proposition 2 probe on random Λ-CQs."""

    @pytest.mark.parametrize("seed", range(4))
    def test_agreement_with_probe(self, seed):
        rng = random.Random(seed)
        checked = 0
        while checked < 12:
            q = _random_lambda_tree(rng, rng.randint(3, 6))
            if q is None:
                continue
            cq = DitreeCQ.from_structure(q)
            if not cq.is_lambda_cq():
                continue
            checked += 1
            decision = decide_lambda(cq)
            probe = probe_boundedness(OneCQ.from_structure(q), 5)
            if probe.verdict is Verdict.BOUNDED:
                assert decision.fo_rewritable, q.describe()
            elif probe.verdict is Verdict.UNBOUNDED_EVIDENCE:
                assert not decision.fo_rewritable, q.describe()
