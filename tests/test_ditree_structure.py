"""Tests for ditree order/structure utilities (Section 4 notions)."""

import pytest

from repro import zoo
from repro.core import StructureBuilder, path_structure
from repro.ditree import DitreeCQ, DitreeError, ditree_pairs_summary, is_minimal, minimise
from repro.core.structure import F, T


def build_tree(edges, labels):
    b = StructureBuilder()
    for node, labs in labels.items():
        b.add_node(node, *labs)
    for src, dst in edges:
        b.add_edge(src, dst)
    return b.build()


class TestOrder:
    def tree(self):
        #      r
        #     / \
        #    a   b
        #   / \
        #  c   d
        return DitreeCQ.from_structure(
            build_tree(
                [("r", "a"), ("r", "b"), ("a", "c"), ("a", "d")],
                {"r": [], "a": [], "b": [T], "c": [F], "d": [T]},
            )
        )

    def test_root(self):
        assert self.tree().root == "r"

    def test_rejects_non_tree(self):
        with pytest.raises(DitreeError):
            DitreeCQ.from_structure(
                build_tree([("a", "b"), ("b", "a")], {"a": [], "b": []})
            )

    def test_leq(self):
        t = self.tree()
        assert t.leq("r", "c")
        assert t.leq("a", "a")
        assert not t.leq("b", "c")
        assert t.lt("a", "c")
        assert not t.lt("a", "a")

    def test_comparable(self):
        t = self.tree()
        assert t.comparable("r", "d")
        assert not t.comparable("c", "d")
        assert not t.comparable("b", "c")

    def test_inf(self):
        t = self.tree()
        assert t.inf("c", "d") == "a"
        assert t.inf("c", "b") == "r"
        assert t.inf("a", "c") == "a"

    def test_delta_and_distance(self):
        t = self.tree()
        assert t.delta("r", "c") == 2
        assert t.distance("c", "d") == 2
        assert t.distance("c", "b") == 3
        assert t.distance("a", "a") == 0

    def test_delta_requires_order(self):
        with pytest.raises(DitreeError):
            self.tree().delta("c", "d")

    def test_subtree(self):
        t = self.tree()
        assert t.subtree_nodes("a") == {"a", "c", "d"}
        assert t.subtree_depth("a") == 1
        assert t.subtree_depth("c") == 0
        sub = t.subtree("a")
        assert len(sub) == 3


class TestSolitaryPairs:
    def test_q3_pairs_comparable(self):
        cq = DitreeCQ.from_structure(zoo.q3())
        pairs = cq.solitary_pairs()
        assert len(pairs) == 2
        assert len(cq.comparable_solitary_pairs()) == 2

    def test_q4_pair_incomparable(self):
        cq = DitreeCQ.from_structure(zoo.q4())
        assert cq.solitary_pairs()
        assert not cq.comparable_solitary_pairs()

    def test_minimal_distance(self):
        cq = DitreeCQ.from_structure(zoo.q4())
        pairs = cq.minimal_distance_pairs()
        assert pairs == [("z", "x")]

    def test_q4_symmetric_pair(self):
        cq = DitreeCQ.from_structure(zoo.q4())
        assert cq.is_symmetric_pair("z", "x")

    def test_asymmetric_pair(self):
        # F <- y -> m -> T : branches of different length.
        q = build_tree(
            [("y", "x"), ("y", "m"), ("m", "z")],
            {"x": [F], "y": [], "m": [], "z": [T]},
        )
        cq = DitreeCQ.from_structure(q)
        assert not cq.is_symmetric_pair("z", "x")
        assert not cq.is_quasi_symmetric()

    def test_q4_quasi_symmetric(self):
        assert DitreeCQ.from_structure(zoo.q4()).is_quasi_symmetric()

    def test_comparable_pair_blocks_quasi_symmetry(self):
        assert not DitreeCQ.from_structure(zoo.q3()).is_quasi_symmetric()

    def test_lambda_detection(self):
        assert DitreeCQ.from_structure(zoo.q4()).is_lambda_cq()
        assert DitreeCQ.from_structure(zoo.q5()).is_lambda_cq()
        assert not DitreeCQ.from_structure(zoo.q3()).is_lambda_cq()

    def test_span(self):
        assert DitreeCQ.from_structure(zoo.q4()).span() == 1
        assert DitreeCQ.from_structure(zoo.q6()).span() == 2

    def test_summary_keys(self):
        summary = ditree_pairs_summary(DitreeCQ.from_structure(zoo.q4()))
        assert summary["quasi_symmetric"] is True
        assert summary["lambda_cq"] is True
        assert summary["span"] == 1
        assert summary["min_distance"] == 2


class TestMinimality:
    def test_q4_minimal(self):
        assert is_minimal(zoo.q4())

    def test_duplicate_branch_not_minimal(self):
        q = build_tree(
            [("r", "a"), ("r", "b"), ("a", "x"), ("b", "y")],
            {"r": [F], "a": [], "b": [], "x": [T], "y": [T]},
        )
        assert not is_minimal(q)
        core = minimise(q)
        assert len(core) == 3

    def test_minimise_keeps_labels(self):
        q = path_structure(["T", "T", "F"])
        assert minimise(q) == q  # already minimal
