"""Tests for d-sirup certain-answer evaluation (all strategies)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    StructureBuilder,
    certain_answer,
    evaluate_branching,
    evaluate_exhaustive,
    evaluate_via_pi,
    evaluate_with_disjointness,
    iter_completions,
    path_structure,
)
from repro.core.dsirup import (
    a_nodes,
    complete,
    data_consistent_with_disjointness,
    evaluate_dsirup,
)
from repro.core.structure import A, F, Structure, T


def q_ftt() -> Structure:
    """q3-like: T -R-> T -R-> F."""
    return path_structure(["T", "T", "F"], prefix="q")


def data_path(labels, prefix="d") -> Structure:
    return path_structure(labels, prefix=prefix)


class TestCompletions:
    def test_a_nodes_sorted(self):
        d = data_path(["A", "T", "A"])
        assert a_nodes(d) == ("d0", "d2")

    def test_completion_count(self):
        d = data_path(["A", "A", "A"])
        assert len(list(iter_completions(d))) == 8

    def test_complete_keeps_a_label(self):
        d = data_path(["A"])
        done = complete(d, {"d0": T})
        assert done.has_label("d0", A)
        assert done.has_label("d0", T)

    def test_no_a_nodes_single_completion(self):
        d = data_path(["T", "F"])
        models = list(iter_completions(d))
        assert models == [d]


class TestEvaluationStrategies:
    def test_direct_match_yes(self):
        q = q_ftt()
        d = data_path(["T", "T", "F"])
        assert evaluate_exhaustive(q, d).certain
        assert evaluate_branching(q, d).certain
        assert evaluate_via_pi(q, d).certain

    def test_no_match_no(self):
        q = q_ftt()
        d = data_path(["T", "F", "F"])
        for strategy in ("exhaustive", "branching", "pi"):
            assert not evaluate_dsirup(q, d, strategy).certain

    def test_case_split_yes(self):
        # T T A F: if A=T then (v1,v2,v3) no wait—if A=T, T T at v1,v2?
        # Pattern needs T,T,F consecutive: A=T gives T(d1) T(d2) F(d3);
        # A=F gives T(d0) T(d1) F(d2).
        q = q_ftt()
        d = data_path(["T", "T", "A", "F"])
        assert evaluate_exhaustive(q, d).certain
        assert evaluate_branching(q, d).certain
        assert evaluate_via_pi(q, d).certain

    def test_case_split_no_with_countermodel(self):
        q = q_ftt()
        d = data_path(["T", "A", "F", "F"])
        result = evaluate_exhaustive(q, d)
        assert not result.certain
        assert result.countermodel is not None
        from repro.core import has_homomorphism

        assert not has_homomorphism(q, result.countermodel)

    def test_branching_prunes(self):
        q = q_ftt()
        d = data_path(["T", "T", "F"] + ["A"] * 6)
        exhaustive = evaluate_exhaustive(q, d)
        branching = evaluate_branching(q, d)
        assert exhaustive.certain and branching.certain
        assert branching.labelings_checked < exhaustive.labelings_checked

    def test_pi_rejects_non_one_cq(self):
        q = path_structure(["F", "F", "T"])
        with pytest.raises(ValueError):
            evaluate_via_pi(q, data_path(["T"]))

    def test_auto_strategy_dispatch(self):
        q = q_ftt()
        d = data_path(["T", "A", "F"])
        assert evaluate_dsirup(q, d, "auto").certain == evaluate_exhaustive(q, d).certain

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            evaluate_dsirup(q_ftt(), data_path(["T"]), "magic")

    def test_certain_answer_wrapper(self):
        assert certain_answer(q_ftt(), data_path(["T", "T", "F"]))


class TestDisjointness:
    def test_inconsistent_data_entails_everything(self):
        d = data_path([("T", "F")])
        assert not data_consistent_with_disjointness(d)
        assert evaluate_with_disjointness(q_ftt(), d).certain

    def test_forced_labels_respected(self):
        # A node already labelled T may only be completed as T.
        q = q_ftt()
        b = StructureBuilder()
        b.add_node("d0", T)
        b.add_node("d1", A, T)
        b.add_node("d2", F)
        b.add_edge("d0", "d1")
        b.add_edge("d1", "d2")
        d = b.build()
        assert evaluate_with_disjointness(q, d).certain

    def test_twinful_query_never_matches_disjoint_models(self):
        q = path_structure([("T", "F"), "F"])
        d = data_path(["A", "F"])
        # Models are disjoint, so no node carries both T and F.
        assert not evaluate_with_disjointness(q, d).certain

    def test_disjoint_matches_plain_when_no_forced_labels(self):
        q = q_ftt()
        d = data_path(["T", "A", "A", "F"])
        plain = evaluate_exhaustive(q, d).certain
        disjoint = evaluate_with_disjointness(q, d).certain
        assert plain == disjoint  # q has no twins, same models matter


@st.composite
def one_cq_and_data(draw):
    """A random path 1-CQ and a random small labelled digraph."""
    q_labels = draw(
        st.lists(
            st.sampled_from(["T", ""]), min_size=1, max_size=3
        )
    )
    q = path_structure(q_labels + ["F"], prefix="q")
    n = draw(st.integers(min_value=1, max_value=5))
    labels = draw(
        st.lists(
            st.sampled_from(["T", "F", "A", ""]), min_size=n, max_size=n
        )
    )
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=7,
        )
    )
    b = StructureBuilder()
    for i, lab in enumerate(labels):
        if lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for src, dst in edges:
        b.add_edge(src, dst)
    return q, b.build()


class TestStrategyAgreement:
    @given(one_cq_and_data())
    @settings(max_examples=60, deadline=None)
    def test_all_strategies_agree(self, qd):
        """Δ_q ≡ Π_q on 1-CQs (the paper's Section 2 equivalence), and
        branch-and-prune is sound and complete."""
        q, data = qd
        reference = evaluate_exhaustive(q, data).certain
        assert evaluate_branching(q, data).certain == reference
        assert evaluate_via_pi(q, data).certain == reference
