"""Unit and property tests for the homomorphism engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    StructureBuilder,
    find_homomorphism,
    has_homomorphism,
    is_core,
    is_homomorphism,
    iter_homomorphisms,
    path_structure,
)
from repro.core.homomorphism import compose, retract_to_subset
from repro.core.structure import R, S, Structure


def build_random_structure(draw_nodes, draw_edges, labels):
    b = StructureBuilder()
    for i, labs in enumerate(labels):
        b.add_node(i, *labs)
    for src, dst in draw_edges:
        b.add_edge(src % max(len(labels), 1), dst % max(len(labels), 1))
    return b.build()


class TestBasics:
    def test_identity_is_homomorphism(self):
        q = path_structure(["T", "", "F"])
        ident = {n: n for n in q.nodes}
        assert is_homomorphism(q, q, ident)

    def test_label_preservation_required(self):
        q = path_structure(["T"])
        d = path_structure(["F"])
        assert not has_homomorphism(q, d)

    def test_extra_labels_on_target_ok(self):
        q = path_structure(["T"])
        d = path_structure([("T", "F")])
        assert has_homomorphism(q, d)

    def test_edge_direction_matters(self):
        q = path_structure(["T", "F"])  # T -> F
        b = StructureBuilder()
        b.add_node("x", "F")
        b.add_node("y", "T")
        b.add_edge("x", "y")  # F -> T
        assert not has_homomorphism(q, b.build())

    def test_edge_predicate_matters(self):
        q = path_structure(["T", "F"], preds=[S])
        d = path_structure(["T", "F"], preds=[R])
        assert not has_homomorphism(q, d)

    def test_path_into_longer_path(self):
        q = path_structure(["", ""])
        d = path_structure(["", "", "", ""])
        homs = list(iter_homomorphisms(q, d))
        assert len(homs) == 3  # three consecutive pairs

    def test_path_collapses_onto_loop(self):
        b = StructureBuilder()
        b.add_edge("x", "x")
        loop = b.build()
        q = path_structure(["", "", "", ""])
        assert has_homomorphism(q, loop)

    def test_no_hom_into_empty(self):
        q = path_structure(["T"])
        assert not has_homomorphism(q, Structure())

    def test_empty_source_has_trivial_hom(self):
        assert find_homomorphism(Structure(), path_structure(["T"])) == {}


class TestSeedsAndFilters:
    def test_seed_forces_image(self):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        homs = list(iter_homomorphisms(q, d, seed={"q0": "d1"}))
        assert len(homs) == 1
        assert homs[0] == {"q0": "d1", "q1": "d2"}

    def test_infeasible_seed(self):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", ""], prefix="d")
        assert not has_homomorphism(q, d, seed={"q0": "d1"})

    def test_seed_with_wrong_labels_rejected(self):
        q = path_structure(["T", ""], prefix="q")
        d = path_structure(["", "T"], prefix="d")
        assert not has_homomorphism(q, d, seed={"q0": "d0"})

    def test_seed_outside_target_rejected(self):
        q = path_structure(["T"], prefix="q")
        d = path_structure(["T"], prefix="d")
        assert not has_homomorphism(q, d, seed={"q0": "nope"})

    def test_restrict_image(self):
        q = path_structure([""], prefix="q")
        d = path_structure(["", ""], prefix="d")
        homs = list(
            iter_homomorphisms(q, d, restrict_image=frozenset({"d1"}))
        )
        assert [h["q0"] for h in homs] == ["d1"]

    def test_node_filter_vetoes(self):
        q = path_structure([""], prefix="q")
        d = path_structure(["", ""], prefix="d")
        homs = list(
            iter_homomorphisms(
                q, d, node_filter=lambda x, v: v != "d0"
            )
        )
        assert [h["q0"] for h in homs] == ["d1"]

    def test_self_loop_source_consistency(self):
        b = StructureBuilder()
        b.add_edge("x", "x")
        loop = b.build()
        d = path_structure(["", ""])
        assert not has_homomorphism(loop, d)
        assert has_homomorphism(loop, loop)


class TestUtilities:
    def test_compose(self):
        first = {"a": "x"}
        second = {"x": 1}
        assert compose(first, second) == {"a": 1}

    def test_is_core_path_with_distinct_labels(self):
        q = path_structure(["T", "F"])
        assert is_core(q)

    def test_is_core_rejects_redundant_disjoint_copy(self):
        p1 = path_structure(["T", "F"], prefix="a")
        p2 = path_structure(["T", "F"], prefix="b")
        union = Structure(
            p1.nodes | p2.nodes,
            p1.unary_facts | p2.unary_facts,
            p1.binary_facts | p2.binary_facts,
        )
        assert not is_core(union)

    def test_retract_to_subset(self):
        p1 = path_structure(["T", "F"], prefix="a")
        p2 = path_structure(["T", "F"], prefix="b")
        union = p1.union(p2)
        retraction = retract_to_subset(union, frozenset(p1.nodes))
        assert retraction is not None
        assert retraction["b0"] == "a0"
        assert retraction["a0"] == "a0"

    def test_retract_impossible(self):
        q = path_structure(["T", "F"])
        assert retract_to_subset(q, frozenset({"v0"})) is None


@st.composite
def small_structure(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    label_sets = draw(
        st.lists(
            st.sets(st.sampled_from(["T", "F", "A"]), max_size=2),
            min_size=n,
            max_size=n,
        )
    )
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=8,
        )
    )
    b = StructureBuilder()
    for i, labs in enumerate(label_sets):
        b.add_node(i, *labs)
    for src, dst in edges:
        b.add_edge(src, dst)
    return b.build()


class TestProperties:
    @given(small_structure())
    @settings(max_examples=60, deadline=None)
    def test_identity_always_hom(self, s):
        assert is_homomorphism(s, s, {n: n for n in s.nodes})

    @given(small_structure(), small_structure())
    @settings(max_examples=40, deadline=None)
    def test_every_found_hom_verifies(self, src, dst):
        count = 0
        for hom in iter_homomorphisms(src, dst):
            assert is_homomorphism(src, dst, hom)
            count += 1
            if count > 20:
                break

    @given(small_structure(), small_structure(), small_structure())
    @settings(max_examples=25, deadline=None)
    def test_homs_compose(self, a, b, c):
        h1 = find_homomorphism(a, b)
        h2 = find_homomorphism(b, c)
        if h1 is not None and h2 is not None:
            assert is_homomorphism(a, c, compose(h1, h2))

    @given(small_structure())
    @settings(max_examples=40, deadline=None)
    def test_hom_into_disjoint_union_component(self, s):
        copy, _ = s.with_fresh_nodes("u")
        union = s.union(copy)
        assert has_homomorphism(s, union)
