"""The zoo's claimed properties, verified computationally.

This is the executable version of Examples 1-5: every property the paper
claims for q1-q8, D1 and D2 is checked by the library's own machinery.
"""

from repro import zoo
from repro.core import (
    OneCQ,
    Verdict,
    certain_answer,
    evaluate_exhaustive,
    find_unfocused_witness,
    has_homomorphism,
    is_focused_up_to,
    probe_boundedness,
    ucq_rewriting,
)
from repro.core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes
from repro.ditree import DitreeCQ


class TestShapes:
    def test_q1_two_solitary_fs(self):
        q = zoo.q1()
        assert len(solitary_f_nodes(q)) == 2
        assert len(solitary_t_nodes(q)) == 2
        assert not twin_nodes(q)

    def test_q2_q3_one_f_two_ts(self):
        for q in (zoo.q2(), zoo.q3()):
            assert len(solitary_f_nodes(q)) == 1
            assert len(solitary_t_nodes(q)) == 2

    def test_q2_uses_s_and_r(self):
        assert zoo.q2().binary_predicates == {"S", "R"}

    def test_q4_is_quasi_symmetric(self):
        cq = DitreeCQ.from_structure(zoo.q4())
        assert cq.is_quasi_symmetric()
        assert cq.is_lambda_cq()

    def test_q5_shape(self):
        q = zoo.q5()
        assert len(solitary_f_nodes(q)) == 1
        assert len(solitary_t_nodes(q)) == 1
        assert len(twin_nodes(q)) == 2
        cq = DitreeCQ.from_structure(q)
        assert cq.is_lambda_cq()
        assert not cq.is_quasi_symmetric()

    def test_q6_shape(self):
        q = zoo.q6()
        assert len(solitary_f_nodes(q)) == 1
        assert len(solitary_t_nodes(q)) == 2
        assert len(twin_nodes(q)) == 1

    def test_q7_is_the_verbatim_path(self):
        q = zoo.q7()
        assert len(q) == 6
        assert len(twin_nodes(q)) == 4
        assert len(solitary_f_nodes(q)) == 1
        assert len(solitary_t_nodes(q)) == 1

    def test_all_zoo_queries_are_connected(self):
        for entry in zoo.zoo_table():
            assert entry.query.is_connected(), entry.name


class TestExample2:
    def test_d1_certain_answer_yes(self):
        result = evaluate_exhaustive(zoo.q1(), zoo.d1())
        assert result.certain

    def test_d1_needs_case_distinction(self):
        """No embedding exists before the A node is labelled."""
        assert not has_homomorphism(zoo.q1(), zoo.d1())

    def test_d2_certain_answer_yes(self):
        assert certain_answer(zoo.q2(), zoo.d2())

    def test_d2_no_direct_embedding(self):
        assert not has_homomorphism(zoo.q2(), zoo.d2())


class TestExample4:
    def test_q5_focused(self):
        cq = OneCQ.from_structure(zoo.q5())
        assert is_focused_up_to(cq, 2)

    def test_q5_sigma_bounded_depth_one(self):
        cq = OneCQ.from_structure(zoo.q5())
        result = probe_boundedness(cq, 5, require_focus=True)
        assert result.verdict is Verdict.BOUNDED
        assert result.depth == 1

    def test_q5_rewriting_c0_or_c1(self):
        cq = OneCQ.from_structure(zoo.q5())
        assert len(ucq_rewriting(cq, 1)) == 2

    def test_q6_not_focused(self):
        cq = OneCQ.from_structure(zoo.q6())
        witness = find_unfocused_witness(cq, 2)
        assert witness is not None
        source, target, hom = witness
        assert hom[source.root_focus] != target.root_focus
        # The root focus lands on an FT-twin, as in the paper's picture.
        image_labels = target.structure.labels(hom[source.root_focus])
        assert {"F", "T"} <= image_labels

    def test_q6_pi_bounded(self):
        cq = OneCQ.from_structure(zoo.q6())
        assert probe_boundedness(cq, 2).verdict is Verdict.BOUNDED

    def test_q6_sigma_unbounded(self):
        cq = OneCQ.from_structure(zoo.q6())
        result = probe_boundedness(cq, 2, require_focus=True)
        assert result.verdict is Verdict.UNBOUNDED_EVIDENCE


class TestBoundednessAcrossZoo:
    def test_q3_unbounded(self):
        cq = OneCQ.from_structure(zoo.q3())
        assert (
            probe_boundedness(cq, 3).verdict is Verdict.UNBOUNDED_EVIDENCE
        )

    def test_q4_unbounded(self):
        cq = OneCQ.from_structure(zoo.q4())
        assert (
            probe_boundedness(cq, 5).verdict is Verdict.UNBOUNDED_EVIDENCE
        )

    def test_q7_bounded(self):
        cq = OneCQ.from_structure(zoo.q7())
        result = probe_boundedness(cq, 5)
        assert result.verdict is Verdict.BOUNDED

    def test_q8_bounded(self):
        cq = OneCQ.from_structure(zoo.q8())
        result = probe_boundedness(cq, 5)
        assert result.verdict is Verdict.BOUNDED


class TestZooTable:
    def test_eight_entries(self):
        table = zoo.zoo_table()
        assert [e.name for e in table] == [
            "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8",
        ]

    def test_sources_recorded(self):
        table = {e.name: e for e in zoo.zoo_table()}
        assert table["q4"].source == "verbatim"
        assert table["q5"].source == "reconstruction"

    def test_one_cq_helper(self):
        assert zoo.one_cq(zoo.q4()).span == 1
