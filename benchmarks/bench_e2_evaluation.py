"""E2 -- Example 2: certain answers over D1/D2 and the Pi_q equivalence.

Paper claims: the certain answer of (Delta_q1, G) over D1 and of
(Delta_q2, G) over D2 is 'yes', established by case distinction; and
for 1-CQs the d-sirup is equivalent to the datalog program Pi_q.  We
regenerate both on the paper's instances and on random data.
"""

from repro import zoo
from repro.core import (
    certain_answer,
    evaluate_branching,
    evaluate_exhaustive,
    evaluate_via_pi,
)
from repro.workloads.generators import random_instance


def test_example2_paper_instances(benchmark, record_rows):
    def run():
        return (
            evaluate_exhaustive(zoo.q1(), zoo.d1()).certain,
            certain_answer(zoo.q2(), zoo.d2()),
        )

    d1_answer, d2_answer = benchmark(run)
    record_rows(
        benchmark,
        [("(Delta_q1, G) over D1", d1_answer), ("(Delta_q2, G) over D2", d2_answer)],
    )
    assert d1_answer and d2_answer


def test_delta_pi_equivalence_random(benchmark, record_rows):
    """Delta_q and Pi_q agree on every sampled instance (Sec. 2)."""
    q = zoo.q2()
    instances = [
        random_instance(n=7, edge_count=12, seed=seed, preds=("R", "S"))
        for seed in range(12)
    ]

    def run():
        agreements = 0
        for data in instances:
            branching = evaluate_branching(q, data).certain
            via_pi = evaluate_via_pi(q, data).certain
            agreements += branching == via_pi
        return agreements

    agreements = benchmark(run)
    record_rows(benchmark, [("agreements", f"{agreements}/{len(instances)}")])
    assert agreements == len(instances)
