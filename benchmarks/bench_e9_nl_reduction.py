"""E9 -- Theorem 7: dag reachability reduces to d-sirup evaluation.

Paper claim: for a minimal ditree CQ with a comparable solitary pair
(case i) or a non-quasi-symmetric twin-free CQ (case ii), s ->* t in a
dag G iff the certain answer over D_G is 'yes' (NL-hardness).  We run
the constructed reduction over random and grid dags and verify the
equivalence on every sample.
"""

from repro import zoo
from repro.core import certain_answer
from repro.ditree import (
    DitreeCQ,
    grid_dag,
    pick_reduction_pair,
    random_dag,
    reachability_instance,
)


def verify_on_graph(cq, graph, source, target):
    instance = reachability_instance(cq, graph, source, target)
    expected = target in graph.reachable(source)
    return certain_answer(cq.query, instance) == expected, expected


def test_case_i_comparable_pair(benchmark, record_rows):
    """q3 has a comparable solitary pair (case i)."""
    cq = DitreeCQ.from_structure(zoo.q3())
    graphs = [random_dag(7, 0.3, seed) for seed in range(6)]

    def run():
        checked = reachable = 0
        for graph in graphs:
            vertices = sorted(graph.vertices)
            ok, expected = verify_on_graph(
                cq, graph, vertices[0], vertices[-1]
            )
            checked += ok
            reachable += expected
        return checked, reachable

    checked, reachable = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        benchmark,
        [("samples", len(graphs)), ("equivalences", checked),
         ("reachable", reachable)],
    )
    assert checked == len(graphs)
    assert 0 < reachable  # both outcomes exercised overall


def test_case_i_grid(benchmark, record_rows):
    cq = DitreeCQ.from_structure(zoo.q3())
    graph = grid_dag(3, 3)

    def run():
        ok_pos, _ = verify_on_graph(cq, graph, (0, 0), (2, 2))
        ok_neg, _ = verify_on_graph(cq, graph, (2, 2), (0, 0))
        return ok_pos, ok_neg

    ok_pos, ok_neg = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, [("forward", ok_pos), ("backward", ok_neg)])
    assert ok_pos and ok_neg


def test_reduction_pair_selection(benchmark, record_rows):
    queries = [("q2", zoo.q2()), ("q3", zoo.q3())]

    def run():
        return [
            (name, pick_reduction_pair(DitreeCQ.from_structure(q)))
            for name, q in queries
        ]

    pairs = benchmark(run)
    record_rows(benchmark, [(name, str(pair)) for name, pair in pairs])
    assert len(pairs) == len(queries)
