"""E3 -- Example 3: D2 is a cactus for q2; skeletons and segments.

Paper claim: the instance D2 arises from q2 by budding twice, with a
three-segment skeleton.  We regenerate cactus enumeration and check D2
is homomorphically equivalent to an enumerated two-bud cactus.
"""

from repro import zoo
from repro.core import (
    OneCQ,
    find_homomorphism,
    iter_cactuses,
)


def test_d2_is_a_two_bud_cactus(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q2())
    d2 = zoo.d2()

    def run():
        for cactus in iter_cactuses(one_cq, max_depth=2):
            if len(cactus.segments) != 3:
                continue
            forward = find_homomorphism(cactus.structure, d2)
            backward = find_homomorphism(d2, cactus.structure)
            if forward and backward:
                return cactus
        return None

    witness = benchmark(run)
    assert witness is not None
    record_rows(
        benchmark,
        [("witness skeleton", witness.shape.describe()),
         ("segments", len(witness.segments))],
    )


def test_cactus_enumeration_depth3(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q2())

    def run():
        return list(iter_cactuses(one_cq, max_depth=3))

    cactuses = benchmark(run)
    by_depth = {}
    for cactus in cactuses:
        by_depth[cactus.depth] = by_depth.get(cactus.depth, 0) + 1
    record_rows(benchmark, sorted(by_depth.items()))
    # Two solitary T nodes: binary budding, so the counts explode with
    # depth (this is exactly why boundedness is hard to decide).
    assert by_depth[0] == 1
    assert by_depth[1] == 3  # bud t0, bud t1, or both
    assert by_depth[2] > by_depth[1]
