"""E17 -- Scaling figure: skeleton 01-trees grow exponentially in depth.

The binary budding of cactuses -- and equally the binary branching of
the computation-encoding trees -- is the source of the 2ExpTime lower
bound.  This experiment regenerates the scaling curve: node counts of
``beta^+`` cuts as the cut depth grows, and the matching growth of the
cactus census for a span-2 query.
"""

import math

from repro import zoo
from repro.atm.encoding import beta_plus_cut, gamma_depth
from repro.atm.machine import iter_computation_trees, toy_reject_machine
from repro.atm.params import EncodingParams
from repro.core import OneCQ, iter_cactuses


def test_beta_plus_growth(benchmark, record_rows):
    machine = toy_reject_machine()
    params = EncodingParams.from_machine(machine, 2)
    comp = next(iter_computation_trees(machine, "1", 2, 16))
    depths = [gamma_depth(params) + 4 * k for k in (0, 2, 4, 6)]

    def run():
        return [
            (depth, len(beta_plus_cut(params, machine, comp, depth)))
            for depth in depths
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows)
    sizes = [count for _, count in rows]
    assert sizes == sorted(sizes)
    # Exponential shape: each 8 extra levels multiplies the main-node
    # census by 4, so the per-step growth ratio stays bounded away from 1.
    ratios = [b / a for a, b in zip(sizes, sizes[1:])]
    assert all(r > 1.15 for r in ratios)


def test_cactus_census_growth(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q2())

    def run():
        counts = {}
        for cactus in iter_cactuses(one_cq, max_depth=3):
            counts[cactus.depth] = counts.get(cactus.depth, 0) + 1
        return sorted(counts.items())

    rows = benchmark(run)
    record_rows(benchmark, rows)
    counts = dict(rows)
    # Doubly exponential flavour: the census explodes with depth.
    assert counts[3] > 20 * counts[2] > 20 * counts[1]
    log_growth = math.log(counts[3] / counts[0])
    benchmark.extra_info["log_growth_depth3"] = round(log_growth, 2)
