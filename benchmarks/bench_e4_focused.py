"""E4 -- Example 4: focusedness separates Pi- from Sigma-boundedness.

Paper claims: q5 is focused and (Sigma_q5, P) is bounded with rewriting
C0 | C1; q6 is NOT focused, (Pi_q6, G) is FO-rewritable but
(Sigma_q6, P) is unbounded.  We regenerate all four verdicts.
"""

from repro import zoo
from repro.core import (
    OneCQ,
    Verdict,
    find_unfocused_witness,
    is_focused_up_to,
    probe_boundedness,
)


def test_q5_focused_and_sigma_bounded(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q5())

    def run():
        focused = is_focused_up_to(one_cq, max_depth=2)
        pi = probe_boundedness(one_cq, probe_depth=3)
        sigma = probe_boundedness(one_cq, probe_depth=3, require_focus=True)
        return focused, pi, sigma

    focused, pi, sigma = benchmark(run)
    record_rows(
        benchmark,
        [("q5 focused", focused),
         ("Pi_q5", pi.verdict.value),
         ("Sigma_q5", sigma.verdict.value)],
    )
    assert focused
    assert pi.verdict is Verdict.BOUNDED
    assert sigma.verdict is Verdict.BOUNDED
    assert sigma.depth <= 1  # the paper's C0 | C1 rewriting


def test_q6_unfocused_and_sigma_unbounded(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q6())

    def run():
        witness = find_unfocused_witness(one_cq, max_depth=2)
        pi = probe_boundedness(one_cq, probe_depth=2)
        sigma = probe_boundedness(one_cq, probe_depth=2, require_focus=True)
        return witness, pi, sigma

    witness, pi, sigma = benchmark(run)
    record_rows(
        benchmark,
        [("q6 unfocused witness", witness is not None),
         ("Pi_q6", pi.verdict.value),
         ("Sigma_q6", sigma.verdict.value)],
    )
    assert witness is not None  # q6 is not focused
    assert pi.verdict is Verdict.BOUNDED  # Pi_q6 is FO-rewritable
    assert sigma.verdict is not Verdict.BOUNDED  # Sigma_q6 is not
