"""E7 -- Claim 4.2: gadget triggering equals gatherable-input firing.

Paper claim: a gadget g is triggered at a segment s iff some input
gathered around s per the input types of phi_g satisfies phi_g.  Our
trigger layer implements exactly the right-hand side; this experiment
measures it against the reference correctness predicates -- the two
must flag the same segments, on clean trees and under mutation.
"""

from repro.atm.encoding import (
    desired_tree_cut,
    gamma_depth,
    incorrect_nodes,
)
from repro.atm.machine import iter_computation_trees, toy_reject_machine
from repro.atm.params import EncodingParams
from repro.atm.reduction import formula_incorrectness, segment_verdict
from repro.circuits.library import build_library

FRONTIER = 9


def setup():
    machine = toy_reject_machine()
    params = EncodingParams.from_machine(machine, 2)
    library = build_library(params, machine, ["1"])
    comp = next(iter_computation_trees(machine, "1", 2, 16))
    depth = FRONTIER + gamma_depth(params) + 8
    tree = desired_tree_cut(params, machine, "1", comp, depth)
    return machine, params, library, tree


def test_formula_vs_reference_clean(benchmark, record_rows):
    machine, params, library, tree = setup()

    def run():
        formula_flagged = formula_incorrectness(
            library, machine, ["1"], tree, FRONTIER
        )
        reference_flagged = incorrect_nodes(
            params, machine, "1", tree, FRONTIER
        )
        return formula_flagged, reference_flagged

    formula_flagged, reference_flagged = benchmark(run)
    record_rows(
        benchmark,
        [("formula flags", len(formula_flagged)),
         ("reference flags", len(reference_flagged))],
    )
    assert formula_flagged == reference_flagged == []


def test_formula_vs_reference_mutations(benchmark, record_rows):
    machine, params, library, tree = setup()
    mutations = [n for n in sorted(tree.nodes()) if 1 < len(n) <= 5]

    def run():
        agree = 0
        for node in mutations:
            mutated = tree.remove_subtree(node)
            formula_flagged = formula_incorrectness(
                library, machine, ["1"], mutated, FRONTIER
            )
            reference_flagged = incorrect_nodes(
                params, machine, "1", mutated, FRONTIER
            )
            agree += formula_flagged == reference_flagged
        return agree

    agree = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        benchmark, [("mutations", len(mutations)), ("agreements", agree)]
    )
    assert agree == len(mutations)


def test_segment_verdicts(benchmark, record_rows):
    machine, params, library, tree = setup()
    nodes = [n for n in sorted(tree.nodes()) if len(n) < FRONTIER]

    def run():
        return [
            segment_verdict(library, machine, ["1"], tree, node)
            for node in nodes
        ]

    verdicts = benchmark(run)
    cuttable = [v for v in verdicts if v.cuttable]
    record_rows(
        benchmark,
        [("segments", len(verdicts)), ("cuttable", len(cuttable))],
    )
    # On a clean rejecting tree, only reject segments are cuttable.
    assert cuttable and all(v.reject and not v.incorrect for v in cuttable)
