"""Shared fixtures and report helpers for the experiment benchmarks.

Every ``bench_e*.py`` regenerates one table/figure-shaped claim of the
paper (see the experiment index in DESIGN.md).  Each benchmark stores
its reproduced rows in ``benchmark.extra_info`` so the claim's shape is
part of the recorded output, and asserts the qualitative property the
paper reports (who wins, which classification, which equivalence).
"""

import pytest


@pytest.fixture
def record_rows():
    """Attach reproduced table rows to a benchmark result."""

    def attach(benchmark, rows, **extra):
        benchmark.extra_info["rows"] = rows
        for key, value in extra.items():
            benchmark.extra_info[key] = value

    return attach
