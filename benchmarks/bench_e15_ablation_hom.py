"""E15 -- Ablation: the homomorphism engine on cactus targets.

Design choice (DESIGN.md): one backtracking engine with label-based
domain pruning serves CQ evaluation, cactus covering and the Lambda
decider.  We measure it on the workloads that dominate the probes:
the covering homomorphisms ``C1 -> C_k`` that witness q5's boundedness
(Example 4), with and without a seeded root focus.

Note that the *unbudded* cactus ``C0 = q5`` does not map into deeper
cactuses -- only budded ones do; that asymmetry is the entire subject
of the paper, and the engine must get it right.
"""

from repro import zoo
from repro.core import (
    OneCQ,
    find_homomorphism,
    full_cactus,
    initial_cactus,
    iter_cactuses,
    iter_homomorphisms,
)


def depth_one_cactus(one_cq):
    return next(
        c for c in iter_cactuses(one_cq, max_depth=1) if c.depth == 1
    )


def test_covering_hom_into_deep_cactus(benchmark, record_rows):
    """The Example 4 witness: C1 -> C4 exists for q5."""
    one_cq = OneCQ.from_structure(zoo.q5())
    source = depth_one_cactus(one_cq)
    target = full_cactus(one_cq, depth=4)

    def run():
        return find_homomorphism(source.structure, target.structure)

    hom = benchmark(run)
    record_rows(
        benchmark,
        [("target nodes", len(target.structure)), ("found", hom is not None)],
    )
    assert hom is not None


def test_unbudded_cactus_does_not_cover(benchmark, record_rows):
    """C0 = q5 has a solitary T that deep cactuses replace by A."""
    one_cq = OneCQ.from_structure(zoo.q5())
    source = initial_cactus(one_cq)
    target = full_cactus(one_cq, depth=3)

    def run():
        return find_homomorphism(source.structure, target.structure)

    hom = benchmark(run)
    record_rows(benchmark, [("found", hom is not None)])
    assert hom is None


def test_cactus_covering_search(benchmark, record_rows):
    """The inner loop of the Proposition 2 probe for q5."""
    one_cq = OneCQ.from_structure(zoo.q5())
    shallow = list(iter_cactuses(one_cq, max_depth=1))
    deep = full_cactus(one_cq, depth=4)

    def run():
        return [
            find_homomorphism(c.structure, deep.structure) is not None
            for c in shallow
        ]

    covered = benchmark(run)
    record_rows(benchmark, [("shallow cactuses", len(shallow)),
                            ("covering", sum(covered))])
    assert any(covered)  # q5 is bounded: some shallow cactus covers


def test_seeded_vs_unseeded(benchmark, record_rows):
    """Seeding the root focus (the Sigma variant) prunes the search."""
    one_cq = OneCQ.from_structure(zoo.q5())
    source = depth_one_cactus(one_cq)
    target = full_cactus(one_cq, depth=3)

    def run():
        seeded = find_homomorphism(
            source.structure,
            target.structure,
            seed={source.root_focus: target.root_focus},
        )
        unseeded = find_homomorphism(source.structure, target.structure)
        return seeded, unseeded

    seeded, unseeded = benchmark(run)
    record_rows(benchmark, [("seeded", seeded is not None),
                            ("unseeded", unseeded is not None)])
    # q5 is focused: the seeded and unseeded searches agree.
    assert seeded is not None and unseeded is not None


def test_enumeration_count(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q5())
    source = depth_one_cactus(one_cq)
    target = full_cactus(one_cq, depth=3)

    def run():
        return sum(
            1
            for _ in iter_homomorphisms(source.structure, target.structure)
        )

    count = benchmark(run)
    record_rows(benchmark, [("homomorphisms", count)])
    assert count >= 1
