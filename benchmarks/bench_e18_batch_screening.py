"""E18 -- Batch screening: large-target hom checks and family sweeps.

The workloads behind ``scripts/bench_batch.py``'s gates, as
pytest-benchmark rows: per-check times of the engine backends on a
large edge-rich random target (the ``matrix`` backend's home regime —
the harness honours ``REPRO_HOM_BACKEND``, so running the benchmark
suite under ``=bitset`` and ``=matrix`` compares them), one
``covers_any`` batch that can never early-exit (a block DAG refutes an
unlabelled path longer than its blocks), and a UCQ screen over a
``workloads.instance_family``.
"""

from repro.core import OneCQ, covers_any, evaluate_batch, has_homomorphism
from repro.core.boundedness import ucq_certain_answers, ucq_rewriting
from repro.core.structure import path_structure
from repro.workloads import (
    block_dag_instance,
    instance_family,
    random_instance,
)
from repro import zoo

TARGET_LABELS = {"T": 1, "F": 1, "": 20, "A": 2, "FT": 0}


def test_large_target_path_check(benchmark, record_rows):
    """One propagation-heavy check on a 300-node, 2400-edge target."""
    query = path_structure([""] * 12)
    target = random_instance(
        300, 2400, seed=7, preds=("R",), label_weights=TARGET_LABELS
    )
    _ = target.bitset_index  # out of the timed region, as in serving

    def run():
        return has_homomorphism(query, target, use_cache=False)

    found = benchmark(run)
    record_rows(benchmark, [("target nodes", 300), ("found", found)])
    assert found


def test_block_dag_refutation(benchmark, record_rows):
    """An unsatisfiable unlabelled path: pure AC-3 refutation work."""
    query = path_structure([""] * 11)
    target = block_dag_instance(300, 8, seed=3)
    _ = target.bitset_index

    def run():
        return has_homomorphism(query, target, use_cache=False)

    found = benchmark(run)
    record_rows(benchmark, [("found", found)])
    assert not found


def test_covers_any_no_early_exit(benchmark, record_rows):
    """A covers_any batch in which every source fails: full scan."""
    target = block_dag_instance(200, 8, seed=5)
    sources = [
        path_structure([""] * 11, prefix=f"s{i}") for i in range(16)
    ]
    _ = target.bitset_index

    def run():
        return covers_any(target, sources, use_cache=False)

    covered = benchmark(run)
    record_rows(benchmark, [("sources", len(sources)), ("covered", covered)])
    assert not covered


def test_family_evaluate_batch(benchmark, record_rows):
    """One query over an instance family (the screening inner loop)."""
    query = path_structure([""] * 8)
    family = instance_family(
        12, 120, 480, seed=13, label_weights=TARGET_LABELS
    )

    def run():
        return evaluate_batch(query, family, use_cache=False)

    answers = benchmark(run)
    record_rows(benchmark, [("family", len(family)), ("yes", sum(answers))])


def test_family_ucq_screen(benchmark, record_rows):
    """The q5 UCQ rewriting screened over a family — the
    ucq_certain_answers consumer (serial below the shard threshold)."""
    one_cq = OneCQ.from_structure(zoo.q5())
    ucq = ucq_rewriting(one_cq, 1)
    family = instance_family(16, 30, 60, seed=9)

    def run():
        return ucq_certain_answers(ucq, family)

    answers = benchmark(run)
    record_rows(benchmark, [("disjuncts", len(ucq)), ("yes", sum(answers))])
