"""E13 -- Appendix G: undirected reachability for quasi-symmetric CQs.

Paper claim: for a quasi-symmetric ditree CQ with one solitary pair
(like q4), s and t are connected in an undirected graph G iff the
certain answer over D_G is 'yes' (L-hardness).  We run the executable
reduction over random undirected graphs and verify every sample.
"""

from repro import zoo
from repro.core import certain_answer
from repro.ditree import DitreeCQ, random_graph, reachability_instance


def test_undirected_reachability_equivalence(benchmark, record_rows):
    cq = DitreeCQ.from_structure(zoo.q4())
    (t, f) = cq.solitary_pairs()[0]
    graphs = [random_graph(6, 0.3, seed) for seed in range(6)]

    def run():
        checked = connected = 0
        for graph in graphs:
            vertices = sorted(graph.vertices)
            source, target = vertices[0], vertices[-1]
            instance = reachability_instance(
                cq, graph, source, target, pair=(t, f)
            )
            expected = target in graph.undirected_reachable(source)
            checked += certain_answer(cq.query, instance) == expected
            connected += expected
        return checked, connected

    checked, connected = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        benchmark,
        [("samples", len(graphs)), ("equivalences", checked),
         ("connected", connected)],
    )
    assert checked == len(graphs)


def test_quasi_symmetry_detected(benchmark, record_rows):
    def run():
        return (
            DitreeCQ.from_structure(zoo.q4()).is_quasi_symmetric(),
            DitreeCQ.from_structure(zoo.q3()).is_quasi_symmetric(),
        )

    q4_sym, q3_sym = benchmark(run)
    record_rows(benchmark, [("q4", q4_sym), ("q3", q3_sym)])
    assert q4_sym and not q3_sym
