"""E5 -- Sec. 3.3 encodings and Claim 4.1.

Paper claim: computation trees embed into 01-trees whose local
correctness (goodness, proper branching/initialisation/computation)
characterises desired trees; mutations are always detected.  We build
real encodings for a toy ATM and measure construction plus checking.
"""

from repro.atm.encoding import (
    desired_tree_cut,
    gamma_depth,
    incorrect_nodes,
    reject_main_nodes,
)
from repro.atm.machine import (
    iter_computation_trees,
    toy_accept_machine,
    toy_reject_machine,
)
from repro.atm.params import EncodingParams

FRONTIER = 9


def build(machine, word="1"):
    params = EncodingParams.from_machine(machine, 2)
    comp = next(iter_computation_trees(machine, word, 2, 16))
    depth = FRONTIER + gamma_depth(params) + 8
    return params, desired_tree_cut(params, machine, word, comp, depth)


def test_desired_tree_construction(benchmark, record_rows):
    machine = toy_reject_machine()

    def run():
        return build(machine)

    params, tree = benchmark(run)
    record_rows(
        benchmark,
        [("nodes", len(tree)), ("depth", tree.depth()),
         ("seq_len", params.seq_len)],
    )
    assert tree.depth() == FRONTIER + gamma_depth(params) + 8


def test_claim41_correctness_scan(benchmark, record_rows):
    machine = toy_reject_machine()
    params, tree = build(machine)

    def run():
        bad = incorrect_nodes(params, machine, "1", tree, FRONTIER)
        rejecting = reject_main_nodes(params, machine, "1", tree, FRONTIER)
        return bad, rejecting

    bad, rejecting = benchmark(run)
    record_rows(
        benchmark,
        [("incorrect nodes", len(bad)), ("reject mains", len(rejecting))],
    )
    assert bad == []  # desired trees are everywhere correct
    assert rejecting  # and the rejecting machine shows its reject leaf


def test_claim41_mutation_detection(benchmark, record_rows):
    machine = toy_accept_machine()
    params, tree = build(machine)
    candidates = [n for n in sorted(tree.nodes()) if 0 < len(n) <= 5]

    def run():
        detected = 0
        for node in candidates:
            mutated = tree.remove_subtree(node)
            if incorrect_nodes(params, machine, "1", mutated, FRONTIER):
                detected += 1
        return detected

    detected = benchmark(run)
    record_rows(
        benchmark,
        [("mutations", len(candidates)), ("detected", detected)],
    )
    assert detected == len(candidates)  # Claim 4.1: all detected
