"""E8 -- Proposition 5: the Schema.org / DL-Lite_bool bridge.

Paper claim: (Delta_q, G) is FO-rewritable iff (Delta'_q, G) is, via a
data/rewriting translation that preserves certain answers.  We verify
the certain-answer transfer on the zoo against random instances and
benchmark both directions of the translation.
"""

from repro import zoo
from repro.core import OneCQ, certain_answer, ucq_rewriting
from repro.obda.schema_org import (
    certain_answer_schema_org,
    data_from_schema_org,
    data_to_schema_org,
    rewrite_ucq_to_schema_org,
)
from repro.workloads.generators import random_instance


def test_certain_answer_transfer(benchmark, record_rows):
    queries = [("q2", zoo.q2()), ("q5", zoo.q5())]
    instances = [
        random_instance(n=6, edge_count=10, seed=seed, preds=("R", "S"))
        for seed in range(10)
    ]

    def run():
        rows = []
        for name, q in queries:
            agree = 0
            for data in instances:
                direct = certain_answer(q, data)
                bridged = certain_answer_schema_org(
                    q, data_to_schema_org(data)
                )
                agree += direct == bridged
            rows.append((name, agree, len(instances)))
        return rows

    rows = benchmark(run)
    record_rows(benchmark, rows)
    for name, agree, total in rows:
        assert agree == total, name


def test_data_translation_roundtrip(benchmark, record_rows):
    instances = [
        random_instance(n=8, edge_count=14, seed=seed)
        for seed in range(20)
    ]

    def run():
        ok = 0
        for data in instances:
            bridged = data_to_schema_org(data)
            back = data_from_schema_org(bridged)
            ok += set(back.nodes_with_label("A")) >= set(
                data.nodes_with_label("A")
            )
        return ok

    ok = benchmark(run)
    record_rows(benchmark, [("roundtrips", f"{ok}/{len(instances)}")])
    assert ok == len(instances)


def test_rewriting_transfer(benchmark, record_rows):
    one_cq = OneCQ.from_structure(zoo.q5())

    def run():
        ucq = ucq_rewriting(one_cq, depth=1)
        return ucq, rewrite_ucq_to_schema_org(ucq)

    ucq, translated = benchmark(run)
    record_rows(
        benchmark,
        [("disjuncts", len(ucq)), ("translated", len(translated))],
    )
    assert len(ucq) == len(translated)
    # The translation replaces A(y) atoms by fresh R-predecessors.
    for before, after in zip(ucq, translated):
        assert not after.nodes_with_label("A")
        assert after.size() >= before.size()
