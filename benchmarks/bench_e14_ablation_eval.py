"""E14 -- Ablation: d-sirup evaluation strategies.

Design choice (DESIGN.md): (Delta_q, G) can be answered by exhaustive
enumeration of covering labelings, by branch-and-prune search, or --
for 1-CQs -- through the compiled datalog program Pi_q.  Expected
shape: datalog << branch-and-prune << exhaustive as the number of
A-nodes grows (exhaustive is 2^#A).
"""

import pytest

from repro import zoo
from repro.core import (
    evaluate_branching,
    evaluate_exhaustive,
    evaluate_via_pi,
)
from repro.workloads.generators import random_instance

STRATEGIES = {
    "exhaustive": evaluate_exhaustive,
    "branching": evaluate_branching,
    "datalog": evaluate_via_pi,
}


def instances(n, count=6):
    return [
        random_instance(n=n, edge_count=2 * n, seed=seed, preds=("R", "S"))
        for seed in range(count)
    ]


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_strategies_small(benchmark, record_rows, strategy):
    data = instances(n=8)
    q = zoo.q2()
    evaluate = STRATEGIES[strategy]

    def run():
        return [evaluate(q, d).certain for d in data]

    answers = benchmark(run)
    record_rows(benchmark, [("answers", sum(answers))], n=8)
    # All strategies agree with the reference (branch-and-prune).
    reference = [evaluate_branching(q, d).certain for d in data]
    assert answers == reference


@pytest.mark.parametrize("strategy", ["branching", "datalog"])
def test_strategies_larger(benchmark, record_rows, strategy):
    """Exhaustive is excluded here: 2^#A labelings are already hopeless."""
    data = instances(n=14, count=4)
    q = zoo.q2()
    evaluate = STRATEGIES[strategy]

    def run():
        return [evaluate(q, d).certain for d in data]

    answers = benchmark(run)
    record_rows(benchmark, [("answers", sum(answers))], n=14)
    reference = [evaluate_via_pi(q, d).certain for d in data]
    assert answers == reference
