"""E12 -- Theorem 11: FO/L/NL trichotomy for one-F-one-T ditree CQs.

Paper claim: with one solitary F and one solitary T, (Delta_q, G) is
FO-rewritable, L-complete or NL-complete, decidable in polynomial
time.  We regenerate the trichotomy over the relevant zoo queries and
generated CQs.
"""

from repro import zoo
from repro.core.cq import solitary_f_nodes, solitary_t_nodes
from repro.ditree import DitreeCQ
from repro.ditree.classify import Complexity, theorem11_trichotomy
from repro.workloads.generators import random_ditree_cq


def one_one_queries(count=25):
    queries = []
    seed = 0
    while len(queries) < count and seed < count * 60:
        q = random_ditree_cq(n=6, seed=seed)
        seed += 1
        if q is None:
            continue
        if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != 1:
            continue
        try:
            queries.append(DitreeCQ.from_structure(q))
        except ValueError:
            continue
    return queries


def test_zoo_trichotomy(benchmark, record_rows):
    expectations = [
        ("q4", Complexity.L),
        ("q5", Complexity.AC0),
        ("q7", Complexity.AC0),
    ]

    def run():
        return [
            (name, theorem11_trichotomy(
                DitreeCQ.from_structure(getattr(zoo, name)())
            ))
            for name, _ in expectations
        ]

    verdicts = benchmark(run)
    record_rows(
        benchmark,
        [(name, v.complexity.value) for name, v in verdicts],
    )
    for (name, expected), (_, verdict) in zip(expectations, verdicts):
        assert verdict.complexity is expected, name


def test_generated_trichotomy_total(benchmark, record_rows):
    queries = one_one_queries()

    def run():
        tally = {}
        for cq in queries:
            verdict = theorem11_trichotomy(cq)
            key = verdict.complexity.value
            tally[key] = tally.get(key, 0) + 1
        return tally

    tally = benchmark(run)
    record_rows(benchmark, sorted(tally.items()), total=len(queries))
    allowed = {
        Complexity.AC0.value,
        Complexity.L.value,
        Complexity.NL.value,
    }
    assert set(tally) <= allowed
