"""E6 -- Theorem 3's query is polynomial in the machine and input.

Paper claim: the 1-CQ q built from (M, w) has polynomial size, with
polynomially many gadgets implementing polynomial-size formulas.  We
sweep the input length and tape size and fit the growth.
"""

import math

from repro.atm.machine import toy_alternation_machine, toy_reject_machine
from repro.atm.params import EncodingParams
from repro.atm.reduction import build_query
from repro.circuits.library import build_library


def test_query_growth_with_input(benchmark, record_rows):
    machine = toy_reject_machine()
    words = ["1", "10", "101", "1010"]

    def run():
        rows = []
        for word in words:
            result = build_query(machine, word)
            stats = result.size_stats()
            rows.append(
                (len(word), result.params.seq_len, stats["nodes"],
                 stats["gadgets"])
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows)
    # Polynomial shape: log-log slope of nodes vs encoding length stays
    # below a small constant (the paper's construction is polynomial).
    (w0, s0, n0, _), (w1, s1, n1, _) = rows[0], rows[-1]
    slope = math.log(n1 / n0) / math.log(s1 / s0)
    benchmark.extra_info["loglog_slope"] = round(slope, 2)
    assert slope < 4.0, f"super-polynomial-looking growth: slope {slope:.2f}"
    # Sizes are monotone in the input length.
    sizes = [row[2] for row in rows]
    assert sizes == sorted(sizes)


def test_formula_library_growth(benchmark, record_rows):
    machine = toy_alternation_machine()

    def run():
        rows = []
        for cells in (2, 4, 8):
            params = EncodingParams.from_machine(machine, cells)
            library = build_library(params, machine, ["1"])
            rows.append(
                (cells, params.d, len(library.all_checks()),
                 library.total_size())
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows)
    # Check counts grow linearly with d (the MustBranch/NoBranch k-range)
    # and total gate counts stay polynomial in the encoding size.
    for (c0, d0, k0, g0), (c1, d1, k1, g1) in zip(rows, rows[1:]):
        assert d1 >= d0 and k1 >= k0
        assert g1 <= g0 * (2 ** (d1 - d0)) * 8
