"""E1 -- Example 1's complexity table for the query zoo.

Paper claim: evaluating (Delta_qi, G) is coNP-complete for q1,
P-complete for q2, NL-complete for q3, L-complete for q4 and in AC0
for q5 (and q6-q8 are further FO-rewritable d-sirups).  We regenerate
the classifiable part of that table with the Section 4 classifiers and
benchmark the classification pass.
"""

from repro import zoo
from repro.core import OneCQ
from repro.ditree import DitreeCQ
from repro.ditree.classify import classify_plain
from repro.ditree.lambda_cq import decide_lambda


def classify_zoo():
    rows = []
    for entry in zoo.zoo_table():
        try:
            cq = DitreeCQ.from_structure(entry.query)
        except ValueError:
            rows.append((entry.name, entry.expected, "dag (Sec. 3 regime)"))
            continue
        verdict = classify_plain(cq)
        label = verdict.complexity.value
        if cq.is_lambda_cq():
            decision = decide_lambda(OneCQ.from_structure(entry.query))
            label += " / lambda:" + (
                "FO" if decision.fo_rewritable else "L-hard"
            )
        rows.append((entry.name, entry.expected, label))
    return rows


def test_zoo_classification_table(benchmark, record_rows):
    rows = benchmark(classify_zoo)
    record_rows(benchmark, rows)
    table = {name: measured for name, _expected, measured in rows}
    # Shape of the paper's table: the FO/AC0 entries and the hardness
    # entries land on the right side of the dichotomy.
    assert "FO" in table["q5"] or "AC0" in table["q5"]
    assert "FO" in table["q7"] or "AC0" in table["q7"]
    assert "FO" in table["q8"] or "AC0" in table["q8"]
    assert "L-" in table["q4"]  # L-complete
    assert "NL-hard" in table["q2"]  # P-complete in the paper, NL-hard here
    assert "NL-hard" in table["q3"]
    assert "dag" in table["q1"] or "NL" in table["q1"]


def test_exact_lambda_decider_on_zoo(benchmark):
    lambda_queries = [
        ("q4", False),
        ("q5", True),
        ("q7", True),
        ("q8", True),
    ]

    def run():
        results = {}
        for name, _expected in lambda_queries:
            q = getattr(zoo, name)()
            results[name] = decide_lambda(
                OneCQ.from_structure(q)
            ).fo_rewritable
        return results

    results = benchmark(run)
    for name, expected in lambda_queries:
        assert results[name] == expected, name
