"""E10 -- Corollary 8: the Delta+ trichotomy for ditree CQs.

Paper claim: with the disjointness rule, every ditree d-sirup is either
FO-rewritable (it has FT-twins), or L-hard (quasi-symmetric, twin-free)
or NL-hard (otherwise).  We classify a stream of generated ditree CQs
and check the verdict distribution is exactly this trichotomy.
"""

from repro import zoo
from repro.ditree import DitreeCQ
from repro.ditree.classify import Complexity, classify_disjoint
from repro.workloads.generators import random_ditree_cq


def generated_queries(count=40):
    queries = []
    seed = 0
    while len(queries) < count and seed < count * 30:
        q = random_ditree_cq(n=6, seed=seed)
        seed += 1
        if q is None:
            continue
        try:
            cq = DitreeCQ.from_structure(q)
        except ValueError:
            continue
        queries.append(cq)
    return queries


def test_disjoint_trichotomy_distribution(benchmark, record_rows):
    queries = generated_queries()

    def run():
        tally = {}
        for cq in queries:
            verdict = classify_disjoint(cq)
            key = verdict.complexity.value
            tally[key] = tally.get(key, 0) + 1
        return tally

    tally = benchmark(run)
    record_rows(benchmark, sorted(tally.items()), total=len(queries))
    allowed = {
        Complexity.AC0.value,
        Complexity.L.value,
        Complexity.L_HARD.value,
        Complexity.NL.value,
        Complexity.NL_HARD.value,
        Complexity.UNKNOWN.value,
    }
    assert set(tally) <= allowed
    # The trichotomy covers every query: nothing lands in UNKNOWN.
    assert Complexity.UNKNOWN.value not in tally


def test_twins_imply_fo_under_disjointness(benchmark, record_rows):
    twinned = [
        DitreeCQ.from_structure(q)
        for q in (zoo.q5(), zoo.q7(), zoo.q8())
    ]

    def run():
        return [classify_disjoint(cq).complexity for cq in twinned]

    verdicts = benchmark(run)
    record_rows(
        benchmark,
        [(f"query {i}", v.value) for i, v in enumerate(verdicts)],
    )
    assert all(v is Complexity.AC0 for v in verdicts)


def test_quasi_symmetric_is_l_hard(benchmark, record_rows):
    cq = DitreeCQ.from_structure(zoo.q4())

    def run():
        return classify_disjoint(cq)

    verdict = benchmark(run)
    record_rows(benchmark, [("q4", verdict.complexity.value)])
    assert verdict.complexity in (Complexity.L, Complexity.L_HARD)
