"""E16 -- Ablation: masked vs. brute-force input gathering.

Design choice (DESIGN.md / circuits.gather): gathering prunes downpaths
by the structural bits the formula conjoins anyway.  Expected shape:
identical firing verdicts, with masked gathering visiting exponentially
fewer candidates as the path length grows.
"""

import pytest

from repro.atm.encoding import gamma_tree
from repro.atm.machine import initial_configuration, toy_reject_machine
from repro.atm.params import EncodingParams, encode_configuration
from repro.circuits.formula import conj, lit
from repro.circuits.gather import (
    CheckFormula,
    InputGroup,
    InputSpec,
    fires_at,
    gather_inputs,
)


def setup(length):
    machine = toy_reject_machine()
    params = EncodingParams.from_machine(machine, 2)
    config = initial_configuration(machine, "1", params.cells)
    tree = gamma_tree(params, encode_configuration(params, config, 0))
    # A structural prefix check: the first `length` bits follow the
    # 111* block pattern with zero address bits.
    mask = tuple(1 if i % 4 != 3 else 0 for i in range(length))
    formula = conj([lit(i, positive=bool(b)) for i, b in enumerate(mask)])
    masked = CheckFormula(
        "masked", formula, InputSpec((InputGroup("down", length, mask),))
    )
    unmasked = CheckFormula(
        "unmasked", formula, InputSpec((InputGroup("down", length),))
    )
    return tree, masked, unmasked


@pytest.mark.parametrize("length", [8, 12, 16])
def test_masked_gathering(benchmark, record_rows, length):
    tree, masked, _ = setup(length)

    def run():
        return fires_at(masked, tree, ())

    fired = benchmark(run)
    candidates = len(list(gather_inputs(tree, (), masked.spec)))
    record_rows(benchmark, [("fired", fired), ("candidates", candidates)])
    assert candidates <= 2


@pytest.mark.parametrize("length", [8, 12, 16])
def test_unmasked_gathering(benchmark, record_rows, length):
    tree, masked, unmasked = setup(length)

    def run():
        return fires_at(unmasked, tree, ())

    fired = benchmark(run)
    candidates = len(list(gather_inputs(tree, (), unmasked.spec)))
    record_rows(benchmark, [("fired", fired), ("candidates", candidates)])
    # Same verdict, exponentially more candidates examined.
    assert fired == fires_at(masked, tree, ())
    assert candidates > 2 ** (length // 4 - 1)
