"""E11 -- Theorem 9 / Corollary 10: the Lambda-CQ FO/L dichotomy decider.

Paper claims: every d-sirup with a Lambda-CQ is FO-rewritable or
L-hard; the dichotomy is decidable in time p(|q|) * 2^{p'(k)} for span
k (fixed-parameter tractable).  We run the exact decider over random
Lambda-CQs, cross-validate against the Proposition 2 probe, and sweep
|q| for fixed span to expose the FPT shape.
"""

from repro.core import OneCQ, Verdict, probe_boundedness
from repro.ditree.lambda_cq import analyse, decide_lambda
from repro.workloads.generators import iter_lambda_cqs


def test_dichotomy_and_cross_validation(benchmark, record_rows):
    queries = [
        OneCQ.from_structure(q)
        for q in iter_lambda_cqs(count=25, size=6, seed=11)
    ]

    def run():
        fo = hard = consistent = 0
        for one_cq in queries:
            decision = decide_lambda(one_cq)
            probe = probe_boundedness(one_cq, probe_depth=3)
            if decision.fo_rewritable:
                fo += 1
                consistent += probe.verdict is not Verdict.UNBOUNDED_EVIDENCE
            else:
                hard += 1
                consistent += probe.verdict is not Verdict.BOUNDED
        return fo, hard, consistent

    fo, hard, consistent = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(
        benchmark,
        [("FO-rewritable", fo), ("L-hard", hard),
         ("probe-consistent", consistent)],
    )
    assert fo + hard == len(queries)
    assert consistent == len(queries)
    assert fo > 0 and hard > 0  # both sides of the dichotomy occur


def test_fpt_scaling_in_query_size(benchmark, record_rows):
    """For fixed span, decision time grows mildly with |q|."""
    sizes = (4, 6, 8, 10)
    pools = {
        size: [
            OneCQ.from_structure(q)
            for q in iter_lambda_cqs(count=6, size=size, seed=size)
        ]
        for size in sizes
    }

    def run():
        rows = []
        for size in sizes:
            decided = sum(
                1 for one_cq in pools[size] if decide_lambda(one_cq) is not None
            )
            rows.append((size, decided))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_rows(benchmark, rows)
    assert all(decided == len(pools[size]) for size, decided in rows)


def test_type_digraph_analysis(benchmark, record_rows):
    queries = [
        OneCQ.from_structure(q)
        for q in iter_lambda_cqs(count=8, size=6, seed=3)
    ]

    def run():
        return [analyse(one_cq) for one_cq in queries]

    analyses = benchmark(run)
    record_rows(
        benchmark,
        [("queries", len(analyses))],
    )
    assert len(analyses) == len(queries)
