#!/usr/bin/env python
"""Benchmark harness: durable-store warm restarts, seeded into
``BENCH_store.json`` at the repo root.

Two restart surfaces introduced by the durable-engine-state PR, each
measured across *real process boundaries* (every run is a fresh
``python`` subprocess, so nothing survives but the store file):

* **Probe warm restart** — an E3-style increasing-depth boundedness
  probe on a span-1 chain query.  The cold arm runs against an empty
  store directory; the warm arm reruns the identical probe in a new
  process against the same directory, where the persisted probe
  checkpoint (settled depths + final result) answers it without
  re-examining a single cactus.
* **Screen warm restart** — the zoo screen workload (``q3``/``q4``/
  ``q5``/``q7`` over a random instance family).  The warm arm replays
  the screen checkpoint rows written by the cold run instead of
  re-deciding any homomorphism.

Both arms must produce byte-identical answers (digest-compared), and
both workloads are pure python and serial, so every criterion is
enforced on all hardware.  Timing is measured *inside* the child
process around the workload (including ``Session`` construction and
store open, excluding interpreter start-up and workload generation,
which are identical in both arms).

Usage::

    python scripts/bench_store.py [--check] [--output PATH] [--rounds N]

``--check`` exits non-zero unless every criterion holds: warm probe
restart >= 2x over cold, warm screen restart >= 1.5x over cold, and
cold/warm answers identical.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = Path(__file__).resolve()
sys.path.insert(0, str(REPO_ROOT / "src"))

MIN_PROBE_SPEEDUP = 2.0
MIN_SCREEN_SPEEDUP = 1.5

PROBE_INTERIOR = 4
PROBE_DEPTH = 14

SCREEN_INSTANCES = 100
SCREEN_NODES = 48
SCREEN_EDGES = 120
SCREEN_SEED = 11


def _digest(payload: object) -> str:
    return hashlib.blake2b(
        repr(payload).encode(), digest_size=16
    ).hexdigest()


def _chain_query(interior: int):
    from repro.core.structure import F, StructureBuilder, T

    b = StructureBuilder()
    b.add_node("f", F)
    prev = "f"
    for i in range(interior):
        b.add_node(f"m{i}")
        b.add_edge(prev, f"m{i}")
        prev = f"m{i}"
    b.add_node("t", T)
    b.add_edge(prev, "t")
    return b.build()


def _worker_probe(cache_dir: str) -> dict:
    from repro import EngineConfig, Session
    from repro.core.boundedness import probe_boundedness
    from repro.core.cq import OneCQ

    query = _chain_query(PROBE_INTERIOR)
    start = time.perf_counter()
    with Session(
        EngineConfig(cache_dir=cache_dir, workers=1)
    ) as session:
        cq = OneCQ.from_structure(query)
        result = probe_boundedness(cq, PROBE_DEPTH, session=session)
    elapsed = time.perf_counter() - start
    answers = (
        result.verdict.value,
        result.depth,
        result.cactuses_examined,
        tuple(result.uncovered),
    )
    return {"elapsed": elapsed, "digest": _digest(answers)}


def _worker_screen(cache_dir: str) -> dict:
    from repro import EngineConfig, Session, zoo
    from repro.workloads.generators import instance_family

    queries = [zoo.q3(), zoo.q4(), zoo.q5(), zoo.q7()]
    targets = instance_family(
        SCREEN_INSTANCES, SCREEN_NODES, SCREEN_EDGES, SCREEN_SEED
    )
    start = time.perf_counter()
    with Session(
        EngineConfig(cache_dir=cache_dir, workers=1)
    ) as session:
        matrix = session.screen(queries, targets)
    elapsed = time.perf_counter() - start
    return {"elapsed": elapsed, "digest": _digest(matrix)}


def _run_child(mode: str, cache_dir: str) -> dict:
    """One workload run in a fresh interpreter; returns its report."""
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--worker", mode,
         "--cache-dir", cache_dir],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench child ({mode}) failed rc={proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def bench_restart(mode: str, rounds: int, workdir: Path) -> dict:
    """Cold (fresh store dir per round) vs warm (primed dir) restarts."""
    cold_times = []
    digests = set()
    for i in range(rounds):
        d = workdir / f"{mode}-cold-{i}"
        shutil.rmtree(d, ignore_errors=True)
        rep = _run_child(mode, str(d))
        cold_times.append(rep["elapsed"])
        digests.add(rep["digest"])

    warm_dir = workdir / f"{mode}-warm"
    shutil.rmtree(warm_dir, ignore_errors=True)
    prime = _run_child(mode, str(warm_dir))
    digests.add(prime["digest"])
    warm_times = []
    for _ in range(rounds):
        rep = _run_child(mode, str(warm_dir))
        warm_times.append(rep["elapsed"])
        digests.add(rep["digest"])

    cold = min(cold_times)
    warm = min(warm_times)
    speedup = cold / warm
    print(
        f"[bench_store] {mode} restart: cold {cold * 1e3:.1f}ms, "
        f"warm {warm * 1e3:.1f}ms ({speedup:.2f}x), "
        f"answers {'identical' if len(digests) == 1 else 'DIVERGED'}"
    )
    return {
        "cold_s": cold,
        "warm_s": warm,
        "speedup": speedup,
        "answers_identical": len(digests) == 1,
        "digest": sorted(digests)[0] if len(digests) == 1 else None,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_store.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="restart rounds per arm (minimum time is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every criterion holds",
    )
    parser.add_argument(
        "--worker",
        choices=("probe", "screen"),
        default=None,
        help=argparse.SUPPRESS,  # internal: one child measurement
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=argparse.SUPPRESS,  # internal: the child's store directory
    )
    args = parser.parse_args()

    if args.worker is not None:
        fn = _worker_probe if args.worker == "probe" else _worker_screen
        print(json.dumps(fn(args.cache_dir)))
        return 0

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        workdir = Path(tmp)
        probe = bench_restart("probe", args.rounds, workdir)
        screen = bench_restart("screen", args.rounds, workdir)

    criteria = {
        "probe_warm_restart_ge_2x": {
            "enforced": True,
            "skip_reason": None,
            "value": probe["speedup"],
            "pass": probe["speedup"] >= MIN_PROBE_SPEEDUP,
        },
        "screen_warm_restart_ge_1_5x": {
            "enforced": True,
            "skip_reason": None,
            "value": screen["speedup"],
            "pass": screen["speedup"] >= MIN_SCREEN_SPEEDUP,
        },
        "probe_answers_identical": {
            "enforced": True,
            "skip_reason": None,
            "value": probe["answers_identical"],
            "pass": probe["answers_identical"],
        },
        "screen_answers_identical": {
            "enforced": True,
            "skip_reason": None,
            "value": screen["answers_identical"],
            "pass": screen["answers_identical"],
        },
    }

    report = {
        "description": (
            "durable-store warm restarts across real process "
            "boundaries: an E3-style boundedness probe and the zoo "
            "screen rerun in fresh interpreters against a primed store "
            "directory vs an empty one; times are best-of-rounds wall "
            "clock measured inside the child around the workload"
        ),
        "cpu_count": os.cpu_count() or 1,
        "rounds": args.rounds,
        "probe_restart": {
            "query": f"chain({PROBE_INTERIOR} interior)",
            "probe_depth": PROBE_DEPTH,
            **probe,
        },
        "screen_restart": {
            "queries": ["q3", "q4", "q5", "q7"],
            "instances": SCREEN_INSTANCES,
            **screen,
        },
        "criteria": criteria,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_store] wrote {args.output}")
    failures = 0
    for name, crit in criteria.items():
        if not crit["enforced"]:
            print(f"  criterion {name}: SKIPPED ({crit['skip_reason']})")
        elif crit["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(f"  criterion {name}: FAIL (value {crit['value']})")
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
