#!/usr/bin/env python
"""Differential fuzzer: all hom backends + serial-vs-parallel agreement.

Draws seeded random (query, target) pairs from the workload generators
and cross-checks every answer four ways:

* **Backend agreement** — ``has_homomorphism`` must answer identically
  under ``naive`` (the correctness oracle), ``bitset``, ``matrix``
  (silently the bitset fallback without numpy) and ``decomp``.
* **Count agreement** — on small targets, ``count_homomorphisms``
  must agree between ``naive``, ``bitset`` and ``decomp``.
* **Serial vs parallel** — ``parallel_evaluate_batch`` over a sharded
  2-worker pool must reproduce the serial ``evaluate_batch`` answers
  bit-for-bit, and ``parallel_screen`` must reproduce the per-query
  serial sweeps.
* **Governed sanity** — a fuel-starved governed session must return
  only UNKNOWN or answers identical to the oracle, never a wrong
  known answer.
* **Semiring agreement** — on small targets the unified evaluation
  surface must be consistent with the classic answers: COUNT through
  every backend equals the naive count, BOOL-as-semiring equals
  ``has_homomorphism``, MINPLUS is finite iff a homomorphism exists,
  and weighted PROB agrees across the enumeration, decomp-DP and
  matrix-matvec routes.
* **Durable-store agreement** (``--cache-dir``) — a disk-backed
  session answers every case alongside the oracle, and is closed and
  reopened every ~40 cases with the recent cases replayed against the
  fresh session, so the replays are answered from *disk* (two-tier
  promotion) and must still match the in-memory path.  The run ends
  with a full checksum sweep of the store (``verify`` must drop 0).

The query rotation includes hostile treewidth-3 k-tree CQs and the
target rotation includes dense multigraph instances (parallel edges
under several predicates plus self-loops) — the adversarial families
from ``repro.workloads.generators``.

Any disagreement prints a self-contained repro (the case seed and the
wire forms of query and target) and exits 1; a clean run prints a
summary and exits 0.  The run is fully determined by ``--seed``, so CI
failures replay locally with the same arguments.

Usage::

    python scripts/fuzz_differential.py [--seed N] [--cases N]
                                        [--seconds S] [--workers N]
                                        [--cache-dir DIR]

``--seconds`` is a soft wall-clock cap: the loop stops early (still
exit 0) once exceeded, so the CI smoke job stays within its budget.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import EngineConfig, ResourceExhausted, Session  # noqa: E402
from repro.core.runtime import (  # noqa: E402
    parallel_evaluate_batch,
    parallel_screen,
    to_wire,
)
from repro.workloads.generators import (  # noqa: E402
    block_dag_instance,
    dense_multigraph_instance,
    random_ditree_cq,
    random_instance,
    random_ktree_cq,
    random_lambda_cq,
)

BACKENDS = ("naive", "bitset", "matrix", "decomp")


def draw_query(rng: random.Random):
    """A small random query: ditree CQs, Λ-CQs, treewidth-3 k-tree CQs
    and dense digraph CQs in rotation, so the sweep hits the
    tree-shaped decomp fast path, the min-fill fallback (k-trees sit
    past the exact-decomposition range) and the cyclic general case."""
    kind = rng.randrange(4)
    seed = rng.randrange(1 << 30)
    if kind == 0:
        q = random_ditree_cq(rng.randint(3, 6), seed)
        if q is not None:
            return q
    if kind == 1:
        q = random_lambda_cq(rng.randint(3, 6), seed, span=rng.randint(1, 2))
        if q is not None:
            return q
    if kind == 2:
        return random_ktree_cq(rng.randint(5, 6), seed)
    n = rng.randint(2, 5)
    return random_instance(n, rng.randint(n, 2 * n), seed)


def draw_target(rng: random.Random):
    seed = rng.randrange(1 << 30)
    shape = rng.randrange(5)
    if shape == 0:
        return block_dag_instance(rng.randint(8, 24), rng.randint(3, 5), seed)
    if shape == 1:
        return dense_multigraph_instance(rng.randint(6, 14), seed)
    n = rng.randint(4, 28)
    return random_instance(n, rng.randint(n, 3 * n), seed)


def report(case_seed: int, what: str, query, target, detail: str) -> None:
    print(f"DISAGREEMENT in {what} (case seed {case_seed}): {detail}")
    print(f"  query wire:  {to_wire(query)!r}")
    print(f"  target wire: {to_wire(target)!r}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--cases", type=int, default=200)
    ap.add_argument("--seconds", type=float, default=None)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="enable the durable-store leg: a disk-backed session "
        "cross-checked against the oracle, reopened every ~40 cases "
        "so replayed answers come from disk",
    )
    args = ap.parse_args()

    rng = random.Random(args.seed)
    started = time.monotonic()
    sessions = {
        b: Session(EngineConfig(backend=b)) for b in BACKENDS
    }
    oracle = sessions["naive"]
    governed = Session(EngineConfig(backend="bitset", hom_fuel=200))
    parallel = Session(
        EngineConfig(backend="bitset", workers=args.workers, parallel_min=8)
    )
    serial = Session(EngineConfig(backend="bitset", workers=1))

    def fresh_durable():
        return Session(
            EngineConfig(backend="bitset", cache_dir=args.cache_dir)
        )

    durable = fresh_durable() if args.cache_dir else None
    durable_cases = 0
    replay: list = []  # (query, target, oracle answer) since last reopen

    checks = 0
    cases = 0
    batch_queries: list = []
    batch_targets: list = []
    for case in range(args.cases):
        if args.seconds is not None and (
            time.monotonic() - started > args.seconds
        ):
            print(f"time cap hit after {cases} cases")
            break
        case_seed = rng.randrange(1 << 30)
        case_rng = random.Random(case_seed)
        query = draw_query(case_rng)
        target = draw_target(case_rng)
        cases += 1

        answers = {
            b: sessions[b].has_homomorphism(query, target) for b in BACKENDS
        }
        checks += len(BACKENDS)
        if len(set(answers.values())) != 1:
            report(case_seed, "has_homomorphism", query, target, repr(answers))
            return 1

        if len(target.nodes) <= 12:
            counts = {
                b: sessions[b].count_homomorphisms(query, target)
                for b in ("naive", "bitset", "decomp")
            }
            checks += 3
            if len(set(counts.values())) != 1:
                report(
                    case_seed, "count_homomorphisms", query, target,
                    repr(counts),
                )
                return 1

            # Semiring surface: COUNT through every backend must equal
            # the legacy count; BOOL-as-semiring must equal
            # has_homomorphism; MINPLUS is finite iff a hom exists.
            sr_counts = {
                b: oracle.evaluate(query, target, "count", backend=b).value
                for b in BACKENDS
            }
            checks += len(BACKENDS)
            if set(sr_counts.values()) != {counts["naive"]}:
                report(
                    case_seed, "semiring COUNT", query, target,
                    f"legacy={counts['naive']} surface={sr_counts!r}",
                )
                return 1
            sr_bool = oracle.evaluate(query, target, "bool").value
            sr_min = oracle.evaluate(query, target, "minplus").value
            checks += 2
            if sr_bool is not answers["naive"]:
                report(
                    case_seed, "semiring BOOL", query, target,
                    f"bool-semiring={sr_bool!r} oracle={answers['naive']!r}",
                )
                return 1
            if (sr_min != math.inf) != answers["naive"]:
                report(
                    case_seed, "semiring MINPLUS", query, target,
                    f"minplus={sr_min!r} oracle={answers['naive']!r}",
                )
                return 1

            # Weighted PROB: the enumeration fold, the decomp bag DP
            # and the matrix matvec must agree on a tuple-independent
            # annotation (dyadic weights keep float sums exact).
            probs = {
                f: case_rng.choice((0.25, 0.5, 1.0))
                for f in target.binary_facts
            }
            vals = {
                b: oracle.evaluate(
                    query, target, "prob", weights=probs, backend=b
                ).value
                for b in ("bitset", "decomp", "matrix")
            }
            want_prob = oracle.evaluate(
                query, target, "prob", weights=probs, backend="naive"
            ).value
            checks += 3
            if not all(
                math.isclose(v, want_prob, rel_tol=1e-9, abs_tol=1e-12)
                for v in vals.values()
            ):
                report(
                    case_seed, "semiring PROB", query, target,
                    f"naive={want_prob!r} others={vals!r}",
                )
                return 1

        if durable is not None:
            d = durable.has_homomorphism(query, target)
            checks += 1
            if d != answers["naive"]:
                report(
                    case_seed, "durable-store has_homomorphism", query,
                    target, f"durable={d!r} oracle={answers['naive']!r}",
                )
                return 1
            replay.append((query, target, answers["naive"]))
            durable_cases += 1
            if durable_cases % 40 == 0:
                # Reopen so the replays below are answered from disk
                # (store hit promoted into the fresh memory tier), not
                # from the warm LRU they were computed into.
                durable.close()
                durable = fresh_durable()
                for rq, rt, want in replay:
                    got = durable.has_homomorphism(rq, rt)
                    checks += 1
                    if got != want:
                        report(
                            case_seed, "durable-store disk replay", rq, rt,
                            f"disk={got!r} oracle={want!r}",
                        )
                        return 1
                replay.clear()

        # A bare governed engine call raises on exhaustion; any answer
        # it *does* return must match the oracle.
        try:
            g = governed.has_homomorphism(query, target)
        except ResourceExhausted:
            g = None
        checks += 1
        if isinstance(g, bool) and g != answers["naive"]:
            report(
                case_seed, "governed has_homomorphism", query, target,
                f"governed={g!r} oracle={answers['naive']!r}",
            )
            return 1

        batch_queries.append(query)
        batch_targets.append(target)
        if len(batch_targets) >= 24:
            q = batch_queries[0]
            want = serial.evaluate_batch(q, batch_targets)
            got = parallel_evaluate_batch(
                q, batch_targets, session=parallel, min_batch=8
            )
            checks += len(batch_targets)
            if got != want:
                report(
                    case_seed, "parallel_evaluate_batch", q,
                    batch_targets[0],
                    f"serial={want!r} parallel={got!r}",
                )
                return 1
            screen_queries = batch_queries[:3]
            want_rows = [
                serial.evaluate_batch(sq, batch_targets)
                for sq in screen_queries
            ]
            got_rows = parallel_screen(
                screen_queries, batch_targets, session=parallel, min_batch=8
            )
            checks += len(screen_queries) * len(batch_targets)
            if got_rows != want_rows:
                report(
                    case_seed, "parallel_screen", screen_queries[0],
                    batch_targets[0],
                    f"serial={want_rows!r} parallel={got_rows!r}",
                )
                return 1
            batch_queries.clear()
            batch_targets.clear()

    if durable is not None:
        store = durable.store
        if store is not None:
            checked, dropped = store.verify()
            print(f"store verify: {checked} entries checked, {dropped} dropped")
            if dropped:
                print("durable store verify dropped corrupt rows")
                return 1
        durable.close()

    for s in (*sessions.values(), governed, parallel, serial):
        s.close()
    elapsed = time.monotonic() - started
    print(
        f"ok: {cases} cases, {checks} cross-checks, "
        f"0 disagreements in {elapsed:.1f}s (seed {args.seed})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
