#!/usr/bin/env python
"""Benchmark harness: incremental vs from-scratch cactus construction.

Times the *construction phase* of E3-style cactus enumeration — iterate
every shape up to a depth and materialise its cactus — for the
incremental ``CactusFactory`` engine against the pre-engine
``build_cactus_from_scratch`` baseline, across queries of span 1-3 and
several depths.  Every round starts from a **cold** factory, so the
measured incremental speedup comes from within-enumeration prefix
sharing (copy-on-write structure deltas, interned segments), not from
handing back previously-cached cactuses; the warm (fully-cached) rate
is recorded separately as extra information.

Writes the results to ``BENCH_cactus.json`` at the repo root — the perf
trajectory seed for cactus construction, mirroring
``BENCH_homengine.json`` for the hom engine.

Usage::

    python scripts/bench_cactus.py [--check] [--output PATH] [--rounds N]

``--check`` exits non-zero unless the acceptance criterion holds: the
geometric-mean speedup of the incremental engine over the from-scratch
baseline is at least 2x across the enumeration workloads.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import zoo  # noqa: E402
from repro.core import OneCQ, StructureBuilder, path_structure  # noqa: E402
from repro.core.cactus import (  # noqa: E402
    CactusFactory,
    CactusState,
    build_cactus_from_scratch,
    iter_shapes,
)
from repro.core.config import EngineConfig  # noqa: E402

MIN_GEOMEAN_SPEEDUP = 2.0


def q_span1() -> OneCQ:
    return OneCQ.from_structure(path_structure(["T", "F"]))


def q_span3() -> OneCQ:
    b = StructureBuilder()
    b.add_node("f", "F")
    for i in range(3):
        b.add_node(f"t{i}", "T")
        b.add_edge(f"t{i}", "f", "R")
    return OneCQ.from_structure(b.build())


def q_gadget() -> OneCQ:
    """A wider segment (8 nodes, two predicates, a twin) at span 2."""
    b = StructureBuilder()
    b.add_node("f", "F")
    b.add_node("t0", "T")
    b.add_node("t1", "T", "B")
    b.add_node("twin", "F", "T")
    for i in range(4):
        b.add_node(f"m{i}")
    b.add_edge("t0", "m0", "R")
    b.add_edge("m0", "m1", "R")
    b.add_edge("m1", "f", "R")
    b.add_edge("t1", "m2", "S")
    b.add_edge("m2", "f", "R")
    b.add_edge("twin", "m3", "S")
    b.add_edge("m3", "m1", "S")
    return OneCQ.from_structure(b.build())


WORKLOADS = [
    # (name, one_cq builder, max_depth)
    ("e3_q2_depth2", lambda: OneCQ.from_structure(zoo.q2()), 2),
    ("e3_q2_depth3", lambda: OneCQ.from_structure(zoo.q2()), 3),
    ("span1_path_depth12", q_span1, 12),
    ("gadget_span2_depth2", q_gadget, 2),
    ("span3_star_depth2", q_span3, 2),
]


# The shape lists are materialised once, outside the timed region: both
# engines consume identical pre-enumerated shapes, so the timings cover
# exactly the construction phase (facts + Structure), not the shared
# combinatorial enumeration of 𝔎_q's skeletons.


def run_incremental(one_cq: OneCQ, shapes: list) -> None:
    """Cold-factory construction through the incremental engine.

    The factory gets a private, empty :class:`CactusState` per round:
    a factory on shared session state would adopt the previous round's
    interned structures wholesale and this would measure cache hits,
    not construction.  The state is built from the environment so the
    ``REPRO_CACTUS_*`` knobs still shape the measured configuration.
    """
    factory = CactusFactory(
        one_cq, state=CactusState(EngineConfig.from_env())
    )
    for shape in shapes:
        factory.cactus(shape)


def run_scratch(one_cq: OneCQ, shapes: list) -> None:
    for shape in shapes:
        build_cactus_from_scratch(one_cq, shape)


def run_warm(factory: CactusFactory, shapes: list) -> None:
    for shape in shapes:
        factory.cactus(shape)


def best_time(fn, rounds: int, target_s: float = 0.1) -> float:
    """Minimum per-call wall time over ``rounds`` measurements.

    Each measurement repeats ``fn`` enough times to fill roughly
    ``target_s`` of wall clock, so millisecond-scale workloads are not
    at the mercy of scheduler noise; the minimum is reported.
    """
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    iters = max(1, int(target_s / max(once, 1e-9)))
    best = once
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_cactus.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="timing rounds per workload (minimum is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the acceptance criterion holds",
    )
    args = parser.parse_args()

    workloads = {}
    speedups = []
    for name, make_cq, max_depth in WORKLOADS:
        one_cq = make_cq()
        shapes = list(iter_shapes(one_cq.span, max_depth))
        cactuses = len(shapes)
        scratch_s = best_time(
            lambda: run_scratch(one_cq, shapes), args.rounds
        )
        incremental_s = best_time(
            lambda: run_incremental(one_cq, shapes), args.rounds
        )
        warm_factory = CactusFactory(one_cq)
        run_warm(warm_factory, shapes)  # populate
        warm_s = best_time(
            lambda: run_warm(warm_factory, shapes), args.rounds
        )
        speedup = scratch_s / incremental_s
        speedups.append(speedup)
        workloads[name] = {
            "cactuses": cactuses,
            "span": one_cq.span,
            "max_depth": max_depth,
            "scratch_s": scratch_s,
            "incremental_cold_s": incremental_s,
            "incremental_warm_s": warm_s,
            "speedup_cold": speedup,
            "speedup_warm": scratch_s / warm_s,
        }
        print(
            f"[bench_cactus] {name}: {cactuses} cactuses, "
            f"scratch {scratch_s * 1e3:.1f}ms, "
            f"incremental {incremental_s * 1e3:.1f}ms "
            f"({speedup:.2f}x cold, {scratch_s / warm_s:.1f}x warm)"
        )

    summary = {
        "geomean_speedup_cold": geomean(speedups),
        "min_speedup_cold": min(speedups),
        "geomean_speedup_warm": geomean(
            [w["speedup_warm"] for w in workloads.values()]
        ),
    }
    criteria = {
        "construction_geomean_speedup_ge_2x": (
            summary["geomean_speedup_cold"] >= MIN_GEOMEAN_SPEEDUP
        ),
    }
    report = {
        "description": (
            "Cactus construction: incremental CactusFactory (cold per "
            "round) vs build_cactus_from_scratch on E3-style "
            "enumerations; times are best-of-rounds wall clock"
        ),
        "rounds": args.rounds,
        "summary": summary,
        "criteria": criteria,
        "workloads": workloads,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_cactus] wrote {args.output}")
    print(
        f"  geomean cold speedup {summary['geomean_speedup_cold']:.2f}x "
        f"(min {summary['min_speedup_cold']:.2f}x, warm "
        f"{summary['geomean_speedup_warm']:.1f}x)"
    )
    for name, ok in criteria.items():
        print(f"  criterion {name}: {'PASS' if ok else 'FAIL'}")
    if args.check and not all(criteria.values()):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
