#!/usr/bin/env python
"""Benchmark harness: the decomp backend and the delta warm-started probe.

Two perf surfaces introduced by the structural-hom PR, seeded into
``BENCH_decomp.json`` at the repo root:

* **Backend duel** — ``decomp`` vs the *best* of ``bitset``/``matrix``
  per check on treewidth-1 query workloads (unlabelled paths and
  ditrees plus a label-pruned path) over large targets: a labelled
  random instance, a sparse labelled instance, and a block-DAG whose
  longest walk is shorter than the path queries (every check is a full
  refutation — the regime where AC-3 re-enqueueing hurts the
  backtrackers most, while the decomp DP does exactly one directional
  semijoin pass per query edge).  Unlabelled queries on the *dense*
  target are recorded as extra information but not gated: dense
  edge-rich targets with numpy are the matrix backend's measured home
  turf, which is exactly why ``backend="auto"`` keeps routing that
  corner to matrix (``config.AUTO_DECOMP_MAX_EDGES_PER_NODE``).
* **Delta warm-started probe** — an E3-style increasing-depth
  boundedness probe on a span-1 chain query (one cactus per depth, each
  extending the previous by a recorded delta).  The warm-started probe
  (``EngineConfig.probe_warmstart``, default) reuses the previous
  depth's per-bag satisfying sets and re-propagates only what the delta
  touched; the baseline re-solves every coverage check from scratch
  through the default engine path.

Criteria are *hardware-aware* in the same sense as the sibling
harnesses: both workloads are pure python and serial, so both criteria
are enforced everywhere — but the duel's "best other backend" includes
the dense matrix path only when numpy is installed, and that is
recorded rather than silently assumed.

Usage::

    python scripts/bench_decomp.py [--check] [--output PATH] [--rounds N]

``--check`` exits non-zero unless every criterion holds: decomp >= 2x
geomean over the best of bitset/matrix on the treewidth-1 suite, and
the warm-started probe >= 1.5x over the cold probe.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# Measure the engine, not the caches (same discipline as the sibling
# harnesses): the hom-cache is disabled for the duel so repeated rounds
# are never answered from an LRU.
os.environ["REPRO_HOM_CACHE"] = "0"

from repro.core.config import EngineConfig  # noqa: E402
from repro.core.cq import OneCQ  # noqa: E402
from repro.core.boundedness import probe_boundedness  # noqa: E402
from repro.core.homengine import (  # noqa: E402
    has_homomorphism,
    matrix_backend_available,
)
from repro.core.structure import (  # noqa: E402
    F,
    StructureBuilder,
    T,
    path_structure,
)
from repro.session import Session  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    block_dag_instance,
    random_instance,
)

MIN_DECOMP_GEOMEAN = 2.0
MIN_WARM_SPEEDUP = 1.5

TARGET_LABELS = {"T": 1, "F": 1, "": 20, "A": 2, "FT": 0}


def unlabelled_ditree(n: int, seed: int):
    import random

    rng = random.Random(seed)
    b = StructureBuilder()
    for i in range(n):
        b.add_node(i)
    for i in range(1, n):
        b.add_edge(rng.randrange(i), i)
    return b.build()


def chain_query(interior: int):
    """A span-1 1-CQ whose cactuses form a single chain per depth:
    F -R-> m_0 -R-> .. -R-> m_{k-1} -R-> T."""
    b = StructureBuilder()
    b.add_node("f", F)
    prev = "f"
    for i in range(interior):
        b.add_node(f"m{i}")
        b.add_edge(prev, f"m{i}")
        prev = f"m{i}"
    b.add_node("t", T)
    b.add_edge(prev, "t")
    return b.build()


# Treewidth-1 queries (the gated workload of the ISSUE): unlabelled
# paths and ditrees, plus one label-pruned path.
PATH_QUERIES = [
    ("path8", path_structure([""] * 8)),
    ("path12", path_structure([""] * 12)),
    ("tree10", unlabelled_ditree(10, 1)),
    ("tree14", unlabelled_ditree(14, 2)),
]
LABELLED_QUERIES = [
    ("labpath10", path_structure(["T"] + [""] * 8 + ["F"])),
]

PROBE_INTERIOR = 4
PROBE_DEPTH = 14


def large_targets():
    return [
        # (name, target, include_labelled_queries, dense)
        (
            "rand_n500_e6n",
            random_instance(
                500, 3000, seed=7, preds=("R",), label_weights=TARGET_LABELS
            ),
            True,
            True,  # 6 edges/node: matrix home turf, unlabelled = info
        ),
        (
            "rand_n1000_e3n",
            random_instance(
                1000, 3000, seed=9, preds=("R",), label_weights=TARGET_LABELS
            ),
            True,
            False,
        ),
        # Longest walk: 7 edges < path8/path12 — pure refutation, the
        # covers_any shape of the boundedness probe.
        (
            "blockdag_n1200",
            block_dag_instance(1200, 8, seed=21),
            False,
            False,
        ),
    ]


def best_time(fn, rounds: int, target_s: float = 0.1) -> float:
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    iters = max(1, int(target_s / max(once, 1e-9)))
    best = once
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_backend_duel(rounds: int) -> dict:
    matrix_ok = matrix_backend_available()
    others = ("bitset", "matrix") if matrix_ok else ("bitset",)
    checks = {}
    gated_speedups = []
    info_speedups = []
    for tname, target, labelled, dense in large_targets():
        queries = [(n, q, not dense) for n, q in PATH_QUERIES]
        if labelled:
            queries += [(n, q, True) for n, q in LABELLED_QUERIES]
        for qname, q, gated in queries:
            times = {}
            for backend in others + ("decomp",):
                times[backend] = best_time(
                    lambda b=backend: has_homomorphism(
                        q, target, backend=b, use_cache=False
                    ),
                    rounds,
                )
            best_other = min(times[b] for b in others)
            speedup = best_other / times["decomp"]
            (gated_speedups if gated else info_speedups).append(speedup)
            checks[f"{tname}/{qname}"] = {
                **{f"{b}_s": times[b] for b in times},
                "best_other_s": best_other,
                "speedup": speedup,
                "gated": gated,
            }
            print(
                f"[bench_decomp] {tname}/{qname}: "
                + ", ".join(
                    f"{b} {times[b] * 1e3:.2f}ms" for b in times
                )
                + f" ({speedup:.2f}x over best other"
                + ("" if gated else ", info-only")
                + ")"
            )
    return {
        "checks": checks,
        "other_backends": list(others),
        "geomean_speedup_gated": geomean(gated_speedups),
        "min_speedup_gated": min(gated_speedups),
        "geomean_speedup_info": geomean(info_speedups)
        if info_speedups
        else None,
    }


def bench_warm_probe(rounds: int) -> dict:
    """E3-style increasing-depth probe: warm-started vs from-scratch."""
    cq = OneCQ.from_structure(chain_query(PROBE_INTERIOR))
    results = {}
    verdicts = {}
    for label, warm in (("warm", True), ("cold", False)):
        with Session(
            EngineConfig(probe_warmstart=warm, workers=1)
        ) as session:
            # Materialise the cactus chain once (both arms measure
            # coverage checking, not cactus construction) and drop any
            # hom-cache contents between rounds.
            probe_boundedness(cq, 3, session=session)

            def run(session=session):
                session.hom.clear_cache()
                return probe_boundedness(cq, PROBE_DEPTH, session=session)

            verdicts[label] = run().verdict.value
            results[label] = best_time(run, rounds, target_s=0.0)
    speedup = results["cold"] / results["warm"]
    print(
        f"[bench_decomp] probe depth {PROBE_DEPTH} (span-1 chain): "
        f"cold {results['cold'] * 1e3:.1f}ms, "
        f"warm {results['warm'] * 1e3:.1f}ms ({speedup:.2f}x)"
    )
    return {
        "query": f"chain({PROBE_INTERIOR} interior)",
        "probe_depth": PROBE_DEPTH,
        "verdict": verdicts["warm"],
        "verdicts_agree": verdicts["warm"] == verdicts["cold"],
        "cold_s": results["cold"],
        "warm_s": results["warm"],
        "speedup": speedup,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_decomp.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="timing rounds per measurement (minimum is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every criterion holds",
    )
    args = parser.parse_args()

    duel = bench_backend_duel(args.rounds)
    probe = bench_warm_probe(args.rounds)

    criteria = {
        "decomp_geomean_speedup_ge_2x_on_tw1": {
            "enforced": True,
            "skip_reason": None,
            "value": duel["geomean_speedup_gated"],
            "pass": duel["geomean_speedup_gated"] >= MIN_DECOMP_GEOMEAN,
        },
        "warm_probe_speedup_ge_1_5x": {
            "enforced": True,
            "skip_reason": None,
            "value": probe["speedup"],
            "pass": probe["speedup"] >= MIN_WARM_SPEEDUP,
        },
        "warm_probe_verdict_agrees": {
            "enforced": True,
            "skip_reason": None,
            "value": probe["verdicts_agree"],
            "pass": probe["verdicts_agree"],
        },
    }

    report = {
        "description": (
            "decomp backend vs the best of bitset/matrix on treewidth-1 "
            "query workloads over large targets, and the delta "
            "warm-started boundedness probe vs the from-scratch probe "
            "on an E3-style increasing-depth run; hom-cache disabled "
            "for the duel; times are best-of-rounds wall clock"
        ),
        "cpu_count": os.cpu_count() or 1,
        "matrix_backend_available": matrix_backend_available(),
        "rounds": args.rounds,
        "backend_duel": duel,
        "warm_probe": probe,
        "criteria": criteria,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_decomp] wrote {args.output}")
    info = duel["geomean_speedup_info"]
    print(
        f"  decomp geomean speedup {duel['geomean_speedup_gated']:.2f}x "
        f"gated (min {duel['min_speedup_gated']:.2f}x"
        + (f", info {info:.2f}x" if info is not None else "")
        + ")"
    )
    print(f"  warm probe speedup {probe['speedup']:.2f}x")
    failures = 0
    for name, crit in criteria.items():
        if not crit["enforced"]:
            print(f"  criterion {name}: SKIPPED ({crit['skip_reason']})")
        elif crit["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(f"  criterion {name}: FAIL (value {crit['value']})")
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
