#!/usr/bin/env python
"""Benchmark harness: the semiring-generic evaluation surface.

Two perf surfaces introduced by the semiring PR, seeded into
``BENCH_semiring.json`` at the repo root:

* **COUNT surface overhead** — ``Session.evaluate(q, d, "count",
  backend="decomp")`` vs the legacy direct counting path
  (``_count_homomorphisms(backend="decomp")``).  The redesign makes
  the public count a thin COUNT-instance wrapper; the gate keeps the
  wrapper thin (<= 1.3x the direct call) so nobody quietly grows a
  dispatch tax onto the hottest non-Boolean ask.
* **PROB matvec speedup** — the matrix backend's weighted forest DP
  (per-variable float64 value vectors pushed through weighted
  adjacency matvecs) vs the weighted enumeration oracle (fold of
  per-hom weight products over ``iter_homomorphisms``) on
  tuple-independent instances with n >= 200 nodes.  The DP must be
  >= 2x faster: that is the whole point of dtype dispatch instead of
  enumerate-then-sum.

Criteria are *hardware-aware*: the COUNT overhead gate is pure python
and enforced everywhere; the PROB gate needs numpy and is recorded
with ``skip_reason`` when the matrix backend is unavailable.

Usage::

    python scripts/bench_semiring.py [--check] [--output PATH] [--rounds N]

``--check`` exits non-zero unless every enforced criterion holds.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# Measure the engine, not the caches: repeated rounds must re-run the
# DP / the enumeration, not replay an LRU hit.
os.environ["REPRO_HOM_CACHE"] = "0"

from repro.core.homengine import (  # noqa: E402
    _count_homomorphisms,
    matrix_backend_available,
    semiring_evaluate,
)
from repro.core.semiring import PROB, resolve_semiring  # noqa: E402
from repro.core.structure import StructureBuilder, path_structure  # noqa: E402
from repro.session import Session  # noqa: E402
from repro.workloads.generators import random_instance  # noqa: E402

MAX_COUNT_OVERHEAD = 1.3
MIN_PROB_SPEEDUP = 2.0


def unlabelled_ditree(n: int, seed: int):
    import random

    rng = random.Random(seed)
    b = StructureBuilder()
    for i in range(n):
        b.add_node(i)
    for i in range(1, n):
        b.add_edge(rng.randrange(i), i)
    return b.build()


# Tree-shaped queries: width 1, so both the decomp DP and the matrix
# forest DP apply; counts over unlabelled R-graphs are large enough to
# be real work but bounded by the DP (never by enumeration).
COUNT_QUERIES = [
    ("path6", path_structure([""] * 6)),
    ("tree9", unlabelled_ditree(9, 3)),
]
PROB_QUERIES = [
    ("path5", path_structure([""] * 5)),
    ("tree7", unlabelled_ditree(7, 4)),
]


def count_targets():
    return [
        ("rand_n300", random_instance(300, 900, seed=11)),
        ("rand_n500", random_instance(500, 1500, seed=13)),
    ]


def prob_targets():
    # n >= 200, the gate's floor: big enough that the matvec amortises
    # its matrix build, small enough that enumeration terminates.
    return [
        ("rand_n200", random_instance(200, 500, seed=17)),
        ("rand_n300", random_instance(300, 700, seed=19)),
    ]


def tuple_independent_weights(target, p: float = 0.9) -> dict:
    return {fact: p for fact in target.binary_facts}


def best_time(fn, rounds: int, target_s: float = 0.1) -> float:
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    iters = max(1, int(target_s / max(once, 1e-9)))
    best = once
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_count_overhead(rounds: int) -> dict:
    """Session.evaluate(..., "count", backend="decomp") vs the direct
    legacy counting call on the same backend."""
    checks = {}
    overheads = []
    with Session() as session:
        for tname, target in count_targets():
            for qname, q in COUNT_QUERIES:
                direct = best_time(
                    lambda q=q, t=target: _count_homomorphisms(
                        q, t, backend="decomp", use_cache=False,
                        session=session,
                    ),
                    rounds,
                )
                surface = best_time(
                    lambda q=q, t=target: session.evaluate(
                        q, t, "count", backend="decomp", use_cache=False
                    ),
                    rounds,
                )
                n_direct = _count_homomorphisms(
                    q, target, backend="decomp", session=session
                )
                n_surface = session.evaluate(
                    q, target, "count", backend="decomp"
                ).value
                overhead = surface / direct
                overheads.append(overhead)
                checks[f"{tname}/{qname}"] = {
                    "direct_s": direct,
                    "surface_s": surface,
                    "overhead": overhead,
                    "count": n_surface,
                    "counts_agree": n_direct == n_surface,
                }
                print(
                    f"[bench_semiring] count {tname}/{qname}: "
                    f"direct {direct * 1e3:.2f}ms, "
                    f"surface {surface * 1e3:.2f}ms "
                    f"({overhead:.2f}x, {n_surface} homs)"
                )
    return {
        "checks": checks,
        "geomean_overhead": geomean(overheads),
        "max_overhead": max(overheads),
        "counts_agree": all(c["counts_agree"] for c in checks.values()),
    }


def bench_prob_matvec(rounds: int) -> dict:
    """PROB via the matrix forest DP vs the weighted enumeration fold
    (the bitset route for weighted semirings) on n >= 200 targets."""
    checks = {}
    speedups = []
    sr = resolve_semiring("prob")
    for tname, target in prob_targets():
        weights = tuple_independent_weights(target)
        for qname, q in PROB_QUERIES:
            times = {}
            values = {}
            for label, backend in (("matvec", "matrix"),
                                   ("enum", "bitset")):
                times[label] = best_time(
                    lambda q=q, t=target, b=backend, w=weights:
                        semiring_evaluate(
                            q, t, sr, weights=w, backend=b,
                            use_cache=False,
                        ),
                    rounds,
                )
                values[label] = semiring_evaluate(
                    q, target, sr, weights=weights, backend=backend,
                    use_cache=False,
                ).value
            speedup = times["enum"] / times["matvec"]
            speedups.append(speedup)
            agree = math.isclose(
                values["matvec"], values["enum"], rel_tol=1e-9
            )
            checks[f"{tname}/{qname}"] = {
                "matvec_s": times["matvec"],
                "enum_s": times["enum"],
                "speedup": speedup,
                "expected_witnesses": values["matvec"],
                "values_agree": agree,
            }
            print(
                f"[bench_semiring] prob {tname}/{qname}: "
                f"enum {times['enum'] * 1e3:.2f}ms, "
                f"matvec {times['matvec'] * 1e3:.2f}ms "
                f"({speedup:.2f}x, E[witnesses]="
                f"{values['matvec']:.1f})"
            )
    return {
        "checks": checks,
        "geomean_speedup": geomean(speedups),
        "min_speedup": min(speedups),
        "values_agree": all(c["values_agree"] for c in checks.values()),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_semiring.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="timing rounds per measurement (minimum is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every enforced criterion holds",
    )
    args = parser.parse_args()

    matrix_ok = matrix_backend_available()
    count = bench_count_overhead(args.rounds)
    prob = bench_prob_matvec(args.rounds) if matrix_ok else None

    criteria = {
        "count_surface_overhead_le_1_3x": {
            "enforced": True,
            "skip_reason": None,
            "value": count["geomean_overhead"],
            "pass": count["geomean_overhead"] <= MAX_COUNT_OVERHEAD,
        },
        "count_surface_agrees_with_legacy": {
            "enforced": True,
            "skip_reason": None,
            "value": count["counts_agree"],
            "pass": count["counts_agree"],
        },
        "prob_matvec_speedup_ge_2x": {
            "enforced": matrix_ok,
            "skip_reason": None if matrix_ok else "numpy not installed",
            "value": prob["geomean_speedup"] if prob else None,
            "pass": (prob["geomean_speedup"] >= MIN_PROB_SPEEDUP)
            if prob
            else True,
        },
        "prob_matvec_agrees_with_enumeration": {
            "enforced": matrix_ok,
            "skip_reason": None if matrix_ok else "numpy not installed",
            "value": prob["values_agree"] if prob else None,
            "pass": prob["values_agree"] if prob else True,
        },
    }

    report = {
        "description": (
            "semiring surface perf: COUNT via Session.evaluate vs the "
            "direct legacy counting path on the decomp backend, and "
            "PROB via the matrix backend's weighted forest matvec DP "
            "vs the weighted enumeration fold on n>=200 "
            "tuple-independent targets; hom-cache disabled; times are "
            "best-of-rounds wall clock"
        ),
        "cpu_count": os.cpu_count() or 1,
        "matrix_backend_available": matrix_ok,
        "rounds": args.rounds,
        "count_overhead": count,
        "prob_matvec": prob,
        "criteria": criteria,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_semiring] wrote {args.output}")
    print(
        f"  count surface overhead {count['geomean_overhead']:.2f}x "
        f"geomean (max {count['max_overhead']:.2f}x)"
    )
    if prob is not None:
        print(
            f"  prob matvec speedup {prob['geomean_speedup']:.2f}x "
            f"geomean (min {prob['min_speedup']:.2f}x)"
        )
    failures = 0
    for name, crit in criteria.items():
        if not crit["enforced"]:
            print(f"  criterion {name}: SKIPPED ({crit['skip_reason']})")
        elif crit["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(f"  criterion {name}: FAIL (value {crit['value']})")
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
