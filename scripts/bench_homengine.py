#!/usr/bin/env python
"""Benchmark harness: the hom engine's backends on the paper benches.

Runs the homomorphism-dominated benchmark files (E15 hom ablation, E2
evaluation, E3 cactus, E4 focused) once per engine backend — ``naive``
and ``bitset`` — with the hom-cache disabled so raw engine speed is
measured, and writes the merged results plus speedups to
``BENCH_homengine.json`` at the repo root.  This file is the seed of
the engine's perf trajectory: future PRs should keep the recorded
speedups from regressing.

Usage::

    python scripts/bench_homengine.py [--check] [--output PATH]

``--check`` exits non-zero unless the PR's acceptance criteria hold
(bitset >= 3x naive on E15, and strictly faster on E2/E3/E4).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

BENCH_FILES = [
    "benchmarks/bench_e15_ablation_hom.py",
    "benchmarks/bench_e2_evaluation.py",
    "benchmarks/bench_e3_cactus.py",
    "benchmarks/bench_e4_focused.py",
]

BACKENDS = ("naive", "bitset")


def run_backend(backend: str, json_path: Path, extra_args: list[str]) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_HOM_BACKEND"] = backend
    # Measure the engine, not the cache: repeated benchmark rounds would
    # otherwise be answered from the LRU and flatten every comparison.
    # The child process ingests these through EngineConfig.from_env()
    # when its default session is first used — the single env-var entry
    # point since the Session refactor.
    env["REPRO_HOM_CACHE"] = "0"
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *BENCH_FILES,
        "-q",
        "--benchmark-json",
        str(json_path),
        *extra_args,
    ]
    print(f"[bench_homengine] backend={backend}: {' '.join(cmd)}")
    subprocess.run(cmd, cwd=REPO_ROOT, env=env, check=True)


def load_means(json_path: Path) -> dict[str, dict]:
    payload = json.loads(json_path.read_text())
    out = {}
    for bench in payload["benchmarks"]:
        out[bench["fullname"]] = {
            "mean_s": bench["stats"]["mean"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return out


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_homengine.json",
        help="where to write the merged results",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the acceptance criteria hold",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest",
    )
    args = parser.parse_args()

    per_backend: dict[str, dict[str, dict]] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for backend in BACKENDS:
            json_path = Path(tmp) / f"{backend}.json"
            run_backend(backend, json_path, args.pytest_args)
            per_backend[backend] = load_means(json_path)

    names = sorted(set(per_backend["naive"]) & set(per_backend["bitset"]))
    benches = {}
    for name in names:
        naive = per_backend["naive"][name]
        bitset = per_backend["bitset"][name]
        benches[name] = {
            "naive_mean_s": naive["mean_s"],
            "bitset_mean_s": bitset["mean_s"],
            "speedup": naive["mean_s"] / bitset["mean_s"],
            "naive_rounds": naive["rounds"],
            "bitset_rounds": bitset["rounds"],
        }

    def group(prefix: str) -> list[str]:
        return [n for n in names if prefix in n]

    summary = {}
    for label, prefix in [
        ("e15_hom_ablation", "bench_e15"),
        ("e2_evaluation", "bench_e2"),
        ("e3_cactus", "bench_e3"),
        ("e4_focused", "bench_e4"),
    ]:
        members = group(prefix)
        speedups = [benches[n]["speedup"] for n in members]
        summary[label] = {
            "benchmarks": len(members),
            "geomean_speedup": geomean(speedups) if speedups else None,
            "min_speedup": min(speedups) if speedups else None,
        }

    # Per-file end-to-end comparisons use the geometric mean: E3 also
    # contains a pure cactus-construction benchmark with no hom calls at
    # all, whose ratio is 1.0 by construction and pure noise otherwise.
    criteria = {
        "e15_geomean_speedup_ge_3x": (
            summary["e15_hom_ablation"]["geomean_speedup"] is not None
            and summary["e15_hom_ablation"]["geomean_speedup"] >= 3.0
        ),
        "e2_e3_e4_strictly_faster": all(
            summary[k]["geomean_speedup"] is not None
            and summary[k]["geomean_speedup"] > 1.0
            for k in ("e2_evaluation", "e3_cactus", "e4_focused")
        ),
    }

    report = {
        "description": (
            "Hom-engine backend comparison (naive vs bitset) on the "
            "E15/E2/E3/E4 benches; hom-cache disabled; times are "
            "pytest-benchmark means"
        ),
        "backends": list(BACKENDS),
        "summary": summary,
        "criteria": criteria,
        "benchmarks": benches,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_homengine] wrote {args.output}")
    for label, stats in summary.items():
        print(
            f"  {label}: geomean speedup "
            f"{stats['geomean_speedup'] and round(stats['geomean_speedup'], 2)}"
            f" (min {stats['min_speedup'] and round(stats['min_speedup'], 2)})"
        )
    for name, ok in criteria.items():
        print(f"  criterion {name}: {'PASS' if ok else 'FAIL'}")

    if args.check and not all(criteria.values()):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
