#!/usr/bin/env python
"""Chaos harness: the supervised job service under injected faults,
seeded into ``BENCH_chaos.json`` at the repo root.

Every leg runs against a *real* ``python -m repro serve`` subprocess
and compares its answers against an unfaulted in-process oracle (one
serial ``Session.screen`` of the same workload).  The fault schedule:

* **Worker kill** — the engine pool's first chunk worker is SIGKILLed
  (``REPRO_FAULT_PLAN=kill:0``); the pool recovers and the screen
  matrix must be digest-identical to the oracle.
* **Server SIGKILL** — the server dies uncleanly mid-screen with one
  job running and one queued; a restart over the same cache dir must
  settle *both* (the running record is adopted once the dead owner's
  lease lapses; checkpointed shards replay) to oracle-identical
  matrices, with zero lost jobs.
* **Server SIGTERM** — graceful drain: admission returns 503 with
  ``Retry-After`` while the running job settles, the process exits
  within the drain deadline, and a restart completes the queued job.
* **Store bit-flip** — a checkpoint row is corrupted on disk between
  runs; the CRC sweep drops it and a re-screen recomputes only that
  row, digest-identical.
* **Cancel storm** — half of a burst of screen jobs is cancelled
  mid-flight; every job reaches exactly one terminal state, the SSE
  stream of a cancelled job ends in ``event: cancelled``, and the
  survivors are digest-identical.
* **Poison job** — ``REPRO_FAULT_PLAN=jobfail:...`` makes the same job
  fail on every attempt; it must be quarantined FAILED after exactly
  ``--retry-max`` attempts, and the terminal record must survive a
  restart.
* **Hung-job cancel** — a deep ungoverned boundedness probe (would run
  for minutes) is cancelled; the Budget cancel hook must settle it
  CANCELLED within seconds.

``--smoke`` is the CI liveness leg: injected-fault retry, cancel over
SSE, and a SIGTERM drain on one small server; exit status is the
assertion.

Usage::

    python scripts/bench_chaos.py [--check] [--output PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# The chaos workload: shaped so a serial screen takes seconds (plenty
# of shards to kill / cancel / checkpoint mid-job) without dominating
# the bench's wall clock.
QUERY_COUNT = 24
QUERY_SIZE = 10
FAMILY_COUNT = 10
FAMILY_NODES = 48
FAMILY_DENSITY = 5.0
FAMILY_SEED = 900

RETRY_MAX = 3
LEASE_TTL_MS = 2000
STORM_JOBS = 6
CANCEL_LATENCY_BOUND_S = 10.0
DRAIN_DEADLINE_S = 60.0

TERMINAL = ("done", "failed", "cancelled")


def _digest(payload: object) -> str:
    return hashlib.blake2b(
        repr(payload).encode(), digest_size=16
    ).hexdigest()


def _queries(count: int = QUERY_COUNT, size: int = QUERY_SIZE):
    from repro.workloads.generators import random_ditree_cq

    queries = []
    seed = 0
    while len(queries) < count and seed < 10_000:
        q = random_ditree_cq(size, seed)
        if q is not None:
            queries.append(q)
        seed += 1
    return queries


def _screen_payload(
    count: int = FAMILY_COUNT,
    seed: int = FAMILY_SEED,
    nodes: int = FAMILY_NODES,
    density: float = FAMILY_DENSITY,
    queries: int = QUERY_COUNT,
    size: int = QUERY_SIZE,
) -> dict:
    from repro.service.wire import structure_to_json
    from repro.workloads.generators import hostile_family

    return {
        "queries": [
            structure_to_json(q) for q in _queries(queries, size)
        ],
        "instances": [
            structure_to_json(i)
            for i in hostile_family(count, nodes, seed=seed, density=density)
        ],
    }


def _oracle_digest(payload: dict) -> str:
    """The unfaulted answer: one serial in-process screen."""
    from repro import EngineConfig, Session
    from repro.service.wire import structure_from_json

    queries = [structure_from_json(q) for q in payload["queries"]]
    instances = [structure_from_json(i) for i in payload["instances"]]
    with Session(EngineConfig(workers=0)) as session:
        return _digest(session.screen(queries, instances))


# ----------------------------------------------------------------------
# Server lifecycle
# ----------------------------------------------------------------------


def _start_server(
    cache_dir: str,
    env_extra: dict | None = None,
    args_extra: tuple = (),
) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_HOM_WORKERS"] = "0"  # engine-serial unless a leg says so
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--cache-dir", cache_dir,
            "serve", "--port", "0", *args_extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )
    line = proc.stdout.readline()
    if "listening" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.strip().rsplit(":", 1)[1])
    return proc, port


def _stop_server(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(10)


def _client(port: int, timeout: float = 60.0):
    from repro.service.client import ServiceClient

    return ServiceClient("127.0.0.1", port, timeout=timeout)


def _wait_events(client, job_id: str, count: int, timeout: float = 300.0):
    """Poll until ``count`` shard events settled (or the job did)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = client.job(job_id)
        if record["events"] >= count or record["status"] in TERMINAL:
            return record
        time.sleep(0.02)
    raise RuntimeError(f"job {job_id} produced no progress in {timeout}s")


def _wait_running(client, job_id: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.job(job_id)["status"] == "running":
            return
        time.sleep(0.02)
    raise RuntimeError(f"job {job_id} never started running")


# ----------------------------------------------------------------------
# Legs
# ----------------------------------------------------------------------


def leg_worker_kill(payload: dict, oracle: str) -> dict:
    """A pool worker SIGKILLed mid-screen inside the server."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-wk-") as tmp:
        proc, port = _start_server(
            tmp,
            env_extra={
                "REPRO_HOM_WORKERS": "2",
                "REPRO_HOM_PARALLEL_MIN": "2",
                "REPRO_FAULT_PLAN": "kill:0",
            },
        )
        try:
            client = _client(port)
            record = client.submit("screen", payload, tenant="chaos")
            final = client.wait(record["id"], timeout=600.0)
        finally:
            _stop_server(proc)
    digest = _digest(final["result"]["matrix"]) if final["status"] == "done" else None
    return {
        "status": final["status"],
        "digest": digest,
        "identical": digest == oracle,
    }


def leg_sigkill(payload: dict, oracle: str, cache_dir: str) -> dict:
    """kill -9 the server with one running + one queued job; restart
    must settle both with zero lost jobs."""
    env = {
        "REPRO_SERVICE_TENANT_JOBS": "1",
        "REPRO_SERVICE_LEASE_TTL_MS": str(LEASE_TTL_MS),
    }
    proc, port = _start_server(cache_dir, env_extra=env)
    try:
        client = _client(port)
        running = client.submit("screen", payload, tenant="chaos")
        queued = client.submit("screen", payload, tenant="chaos")
        at_kill = _wait_events(client, running["id"], 2)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(15)

    restart = time.perf_counter()
    proc, port = _start_server(cache_dir, env_extra=env)
    try:
        client = _client(port)
        finals = {
            jid: client.wait(jid, timeout=600.0)
            for jid in (running["id"], queued["id"])
        }
        resume_s = time.perf_counter() - restart
        metrics = client.metrics()["service"]
    finally:
        _stop_server(proc)
    digests = {
        jid: (_digest(f["result"]["matrix"])
              if f["status"] == "done" else None)
        for jid, f in finals.items()
    }
    return {
        "events_at_kill": at_kill["events"],
        "resume_s": resume_s,
        "statuses": {jid: f["status"] for jid, f in finals.items()},
        "adopted": metrics["adopted"],
        "recovered": metrics["recovered"],
        "all_terminal": all(
            f["status"] in TERMINAL for f in finals.values()
        ),
        "identical": all(d == oracle for d in digests.values()),
    }


def leg_sigterm(payload: dict, oracle: str, cache_dir: str) -> dict:
    """Graceful drain: SIGTERM stops admission with 503, the running
    job settles, the process exits in the deadline, queued work
    resumes after restart."""
    from repro.service.client import ServiceError

    env = {
        "REPRO_SERVICE_TENANT_JOBS": "1",
        "REPRO_SERVICE_DRAIN_MS": str(int(DRAIN_DEADLINE_S * 1000)),
    }
    proc, port = _start_server(cache_dir, env_extra=env)
    drain_status = None
    try:
        client = _client(port)
        running = client.submit("screen", payload, tenant="chaos")
        queued = client.submit("screen", payload, tenant="chaos")
        _wait_events(client, running["id"], 1)
        sent = time.perf_counter()
        proc.send_signal(signal.SIGTERM)
        # The drain window only stays open while the running job
        # finishes its remaining shards, so probe admission the moment
        # healthz flips to "draining" rather than after a fixed sleep.
        probe_deadline = time.monotonic() + 10.0
        while time.monotonic() < probe_deadline:
            try:
                if client.healthz().get("status") == "draining":
                    break
            except (ServiceError, ConnectionError, OSError):
                break
            time.sleep(0.005)
        try:
            client.submit("screen", payload, tenant="chaos")
            drain_status = "accepted"
        except ServiceError as exc:
            drain_status = exc.status
        except (ConnectionError, OSError):
            drain_status = "connection-refused"
        proc.wait(DRAIN_DEADLINE_S + 30)
        exit_s = time.perf_counter() - sent
        returncode = proc.returncode
    finally:
        _stop_server(proc)

    proc, port = _start_server(cache_dir, env_extra=env)
    try:
        client = _client(port)
        finals = {
            jid: client.wait(jid, timeout=600.0)
            for jid in (running["id"], queued["id"])
        }
    finally:
        _stop_server(proc)
    digests = {
        jid: (_digest(f["result"]["matrix"])
              if f["status"] == "done" else None)
        for jid, f in finals.items()
    }
    return {
        "admission_during_drain": drain_status,
        "exit_s": exit_s,
        "returncode": returncode,
        "exited_in_deadline": exit_s < DRAIN_DEADLINE_S + 15,
        "running_settled_before_exit": finals[running["id"]]["status"]
        == "done",
        "statuses": {jid: f["status"] for jid, f in finals.items()},
        "identical": all(d == oracle for d in digests.values()),
    }


def leg_bitflip(payload: dict, oracle: str, cache_dir: str) -> dict:
    """Corrupt one checkpoint row on disk; the CRC sweep must drop it
    and a re-screen must recompute to the identical matrix."""
    from repro.core.store import resolve_store_path

    proc, port = _start_server(cache_dir)
    try:
        client = _client(port)
        record = client.submit("screen", payload, tenant="chaos")
        first = client.wait(record["id"], timeout=600.0)
    finally:
        _stop_server(proc)
    if first["status"] != "done":
        raise RuntimeError(f"seed run failed: {first}")

    db_path = resolve_store_path(cache_dir)
    conn = sqlite3.connect(db_path)
    try:
        row = conn.execute(
            "SELECT ns, key, value FROM kv WHERE ns LIKE 'ckpt:%' LIMIT 1"
        ).fetchone()
        if row is None:
            raise RuntimeError("no checkpoint rows to corrupt")
        ns, key, value = row
        flipped = bytes(b ^ 0xFF for b in value[:4]) + value[4:]
        with conn:
            conn.execute(
                "UPDATE kv SET value = ? WHERE ns = ? AND key = ?",
                (flipped, ns, key),
            )
    finally:
        conn.close()

    proc, port = _start_server(cache_dir)
    try:
        client = _client(port)
        record = client.submit("screen", payload, tenant="chaos")
        final = client.wait(record["id"], timeout=600.0)
    finally:
        _stop_server(proc)
    digest = (
        _digest(final["result"]["matrix"])
        if final["status"] == "done" else None
    )
    return {
        "status": final["status"],
        "identical": digest == oracle,
    }


def leg_cancel_storm(payload: dict, oracle: str) -> dict:
    """Cancel half a burst of screen jobs mid-flight; everything must
    settle exactly once and the survivors must match the oracle."""
    with tempfile.TemporaryDirectory(prefix="repro-chaos-storm-") as tmp:
        proc, port = _start_server(
            tmp, env_extra={"REPRO_SERVICE_TENANT_JOBS": "1"}
        )
        try:
            client = _client(port)
            jobs = [
                client.submit("screen", payload, tenant="storm")["id"]
                for _ in range(STORM_JOBS)
            ]
            doomed = jobs[1::2]
            for jid in doomed:
                client.cancel(jid)
            finals = {
                jid: client.wait(jid, timeout=600.0) for jid in jobs
            }
            # a cancelled job's SSE stream ends in `event: cancelled`
            sse_terminal = None
            for event, _data in client.watch(doomed[0], timeout=60.0):
                sse_terminal = event
        finally:
            _stop_server(proc)
    survivors = [jid for jid in jobs if jid not in doomed]
    return {
        "jobs": len(jobs),
        "statuses": {jid: f["status"] for jid, f in finals.items()},
        "all_terminal": all(
            f["status"] in TERMINAL for f in finals.values()
        ),
        "cancelled": sum(
            finals[jid]["status"] == "cancelled" for jid in doomed
        ),
        "sse_terminal_event": sse_terminal,
        "survivors_identical": all(
            finals[jid]["status"] == "done"
            and _digest(finals[jid]["result"]["matrix"]) == oracle
            for jid in survivors
        ),
    }


def leg_poison(cache_dir: str) -> dict:
    """A job that fails every attempt: quarantined FAILED after exactly
    RETRY_MAX attempts, and the terminal record survives a restart."""
    from repro.service.wire import structure_to_json
    from repro import zoo

    env = {
        "REPRO_FAULT_PLAN": ",".join(
            f"jobfail:{i}" for i in range(RETRY_MAX)
        ),
        "REPRO_SERVICE_RETRY_BACKOFF_MS": "10",
    }
    query = {"query": structure_to_json(zoo.q5()), "probe_depth": 2}
    proc, port = _start_server(
        cache_dir, env_extra=env,
        args_extra=("--retry-max", str(RETRY_MAX)),
    )
    try:
        client = _client(port)
        poison = client.submit("decide", query, tenant="poison")
        final = client.wait(poison["id"], timeout=120.0)
        # the plan is spent (ordinals 0..N-1): a fresh job runs clean
        clean = client.wait(
            client.submit("decide", query, tenant="poison")["id"],
            timeout=120.0,
        )
    finally:
        _stop_server(proc)

    proc, port = _start_server(cache_dir, env_extra=env)
    try:
        survived = _client(port).job(poison["id"])
    finally:
        _stop_server(proc)
    return {
        "status": final["status"],
        "attempts": final["attempts"],
        "error": final.get("error"),
        "clean_status": clean["status"],
        "quarantined_exactly": (
            final["status"] == "failed"
            and final["attempts"] == RETRY_MAX
            and (final.get("error") or "").startswith("quarantined")
        ),
        "record_survives_restart": survived["status"] == "failed"
        and survived["attempts"] == RETRY_MAX,
    }


def leg_hung_cancel() -> dict:
    """A deep ungoverned probe (minutes of search) cancelled mid-run:
    the Budget cancel hook must settle it CANCELLED within seconds."""
    from repro.service.wire import structure_to_json
    from repro import zoo

    with tempfile.TemporaryDirectory(prefix="repro-chaos-hang-") as tmp:
        proc, port = _start_server(tmp)
        try:
            client = _client(port)
            record = client.submit(
                "probe",
                {"query": structure_to_json(zoo.q4()), "probe_depth": 150},
                tenant="hang",
            )
            _wait_running(client, record["id"])
            time.sleep(0.5)  # let it descend into the search
            started = time.perf_counter()
            client.cancel(record["id"])
            final = client.wait(record["id"], timeout=60.0)
            latency = time.perf_counter() - started
        finally:
            _stop_server(proc)
    return {
        "status": final["status"],
        "cancel_latency_s": latency,
        "within_bound": final["status"] == "cancelled"
        and latency < CANCEL_LATENCY_BOUND_S,
    }


# ----------------------------------------------------------------------
# Smoke (the CI liveness leg)
# ----------------------------------------------------------------------


def smoke() -> int:
    payload = _screen_payload(
        count=4, nodes=24, density=4.0, queries=8, size=8
    )
    oracle = _oracle_digest(payload)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-smoke-") as tmp:
        proc, port = _start_server(
            tmp,
            env_extra={
                "REPRO_FAULT_PLAN": "jobfail:0",
                "REPRO_SERVICE_RETRY_BACKOFF_MS": "10",
                "REPRO_SERVICE_TENANT_JOBS": "1",
            },
        )
        try:
            client = _client(port, timeout=30.0)
            # injected fault on the first execution: retried to done
            record = client.submit("screen", payload)
            final = client.wait(record["id"], timeout=120.0)
            assert final["status"] == "done", final
            assert final["attempts"] == 2, final
            assert _digest(final["result"]["matrix"]) == oracle
            # cancel a queued job; its SSE stream ends in `cancelled`
            blocker = client.submit("screen", payload)
            doomed = client.submit("screen", payload)
            got = client.cancel(doomed["id"])
            assert got["status"] in ("cancelled", "running"), got
            events = list(client.watch(doomed["id"], timeout=60.0))
            assert events[-1][0] == "cancelled", events[-1]
            assert client.wait(blocker["id"])["status"] == "done"
            # SIGTERM: graceful drain, prompt exit, clean rc
            proc.send_signal(signal.SIGTERM)
            proc.wait(30)
            assert proc.returncode == 0, proc.returncode
        finally:
            _stop_server(proc)
    print(
        "[bench_chaos] smoke OK: injected-fault retry (attempts=2), "
        "cancel streamed `event: cancelled`, SIGTERM drained cleanly"
    )
    return 0


# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_chaos.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every criterion holds",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI liveness leg only: fault retry, cancel SSE, drain",
    )
    args = parser.parse_args()

    if args.smoke:
        return smoke()

    payload = _screen_payload()
    oracle = _oracle_digest(payload)
    print(f"[bench_chaos] oracle digest {oracle}")

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        worker_kill = leg_worker_kill(payload, oracle)
        print(f"[bench_chaos] worker kill: {worker_kill}")
        sigkill = leg_sigkill(
            payload, oracle, str(Path(tmp) / "sigkill")
        )
        print(f"[bench_chaos] server SIGKILL: {sigkill}")
        sigterm = leg_sigterm(
            payload, oracle, str(Path(tmp) / "sigterm")
        )
        print(f"[bench_chaos] server SIGTERM: {sigterm}")
        bitflip = leg_bitflip(
            payload, oracle, str(Path(tmp) / "bitflip")
        )
        print(f"[bench_chaos] store bit-flip: {bitflip}")
        storm = leg_cancel_storm(payload, oracle)
        print(f"[bench_chaos] cancel storm: {storm}")
        poison = leg_poison(str(Path(tmp) / "poison"))
        print(f"[bench_chaos] poison job: {poison}")
        hung = leg_hung_cancel()
        print(f"[bench_chaos] hung-job cancel: {hung}")

    def crit(value, ok) -> dict:
        return {
            "enforced": True,
            "skip_reason": None,
            "value": value,
            "pass": bool(ok),
        }

    criteria = {
        "worker_kill_digest_identical": crit(
            worker_kill["status"], worker_kill["identical"]
        ),
        "sigkill_both_jobs_settle_identical": crit(
            sigkill["statuses"],
            sigkill["all_terminal"] and sigkill["identical"],
        ),
        "sigterm_admission_rejected_during_drain": crit(
            sigterm["admission_during_drain"],
            sigterm["admission_during_drain"] == 503,
        ),
        "sigterm_exits_in_deadline": crit(
            sigterm["exit_s"],
            sigterm["exited_in_deadline"] and sigterm["returncode"] == 0,
        ),
        "sigterm_work_settles_identical": crit(
            sigterm["statuses"],
            sigterm["running_settled_before_exit"]
            and sigterm["identical"],
        ),
        "bitflip_recomputed_identical": crit(
            bitflip["status"], bitflip["identical"]
        ),
        "cancel_storm_exactly_one_terminal_each": crit(
            storm["statuses"],
            storm["all_terminal"]
            and storm["cancelled"] == len(storm["statuses"]) // 2
            and storm["sse_terminal_event"] == "cancelled"
            and storm["survivors_identical"],
        ),
        "poison_failed_after_exactly_n_attempts": crit(
            {"attempts": poison["attempts"], "status": poison["status"]},
            poison["quarantined_exactly"]
            and poison["clean_status"] == "done"
            and poison["record_survives_restart"],
        ),
        "hung_job_cancelled_within_bound": crit(
            hung["cancel_latency_s"], hung["within_bound"]
        ),
    }

    report = {
        "description": (
            "the supervised job service under injected faults, every "
            "leg against a live `repro serve` subprocess and compared "
            "to an unfaulted serial oracle: pool-worker SIGKILL, "
            "server SIGKILL (restart adopts the orphaned lease and "
            "replays checkpoints), SIGTERM graceful drain, on-disk "
            "checkpoint bit-flip, a cancel storm, a poison job "
            "quarantined after exactly retry-max attempts, and a "
            "hung job cancelled through the Budget hook"
        ),
        "cpu_count": os.cpu_count() or 1,
        "workload": {
            "queries": QUERY_COUNT,
            "query_size": QUERY_SIZE,
            "instances": FAMILY_COUNT,
            "nodes": FAMILY_NODES,
            "density": FAMILY_DENSITY,
            "retry_max": RETRY_MAX,
            "lease_ttl_ms": LEASE_TTL_MS,
        },
        "oracle_digest": oracle,
        "worker_kill": worker_kill,
        "sigkill": sigkill,
        "sigterm": sigterm,
        "bitflip": bitflip,
        "cancel_storm": storm,
        "poison": poison,
        "hung_cancel": hung,
        "criteria": criteria,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"[bench_chaos] wrote {args.output}")
    failures = 0
    for name, criterion in criteria.items():
        if criterion["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(
                f"  criterion {name}: FAIL (value {criterion['value']})"
            )
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
