#!/usr/bin/env python
"""Benchmark harness: the job service under load, seeded into
``BENCH_service.json`` at the repo root.

Three legs, each against a *real* ``python -m repro serve`` subprocess
(nothing shared with the measuring process but the wire):

* **Concurrent screen jobs** — 8 client threads submit one screen job
  each (distinct tenants, distinct instance families) and poll to
  completion.  Reported: per-job p50/p99 latency and aggregate
  throughput (answers/s).  Gate: throughput no worse than 0.8x a
  direct in-process ``Session.screen`` of the same total work, and
  every job's matrix identical to the direct oracle's.
* **Kill -9 restart resume** — a screen job is submitted, the server
  is SIGKILLed after the first shards settle, a new server over the
  same ``--cache-dir`` recovers the in-flight job from its durable
  record, and the engine's shard checkpoints replay the settled spans.
  Gate: the resumed matrix is digest-identical to the direct oracle.
* **Smoke** (``--smoke``) — the CI liveness leg: boot, healthz,
  config, one small screen job watched over SSE (shards must cover
  the family contiguously), metrics.  No thresholds; exit status is
  the assertion.

The engine inside the server runs serial (``REPRO_HOM_WORKERS=0``);
concurrency comes from the service's job executor, so the comparison
isolates the service tier's overhead rather than pool scheduling.

Usage::

    python scripts/bench_service.py [--check] [--output PATH] [--smoke]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = Path(__file__).resolve()
sys.path.insert(0, str(REPO_ROOT / "src"))

MIN_THROUGHPUT_RATIO = 0.8

CLIENTS = 8

# The screening matrix is deliberately query-heavy over dense hostile
# instances: hom-search time scales with |queries| x |facts| while the
# wire decode scales with |facts| alone, so this shape keeps the
# service's per-job codec work small next to the engine work the
# throughput gate compares against.
QUERY_COUNT = 80
QUERY_SIZE = 12
FAMILY_COUNT = 12
FAMILY_NODES = 80
FAMILY_DENSITY = 8.0
FAMILY_SEED = 100  # client i screens family seed FAMILY_SEED + i

KILL_COUNT = 24
KILL_NODES = 60
KILL_DENSITY = 6.0
KILL_SEED = 500
KILL_AFTER_EVENTS = 2


def _digest(payload: object) -> str:
    return hashlib.blake2b(
        repr(payload).encode(), digest_size=16
    ).hexdigest()


def _queries():
    from repro.workloads.generators import random_ditree_cq

    queries = []
    seed = 0
    while len(queries) < QUERY_COUNT and seed < 10_000:
        q = random_ditree_cq(QUERY_SIZE, seed)
        if q is not None:
            queries.append(q)
        seed += 1
    return queries


def _family(
    count: int,
    seed: int,
    nodes: int = FAMILY_NODES,
    density: float = FAMILY_DENSITY,
):
    from repro.workloads.generators import hostile_family

    return hostile_family(count, nodes, seed=seed, density=density)


def _screen_payload(
    count: int,
    seed: int,
    nodes: int = FAMILY_NODES,
    density: float = FAMILY_DENSITY,
) -> dict:
    from repro.service.wire import structure_to_json

    return {
        "queries": [structure_to_json(q) for q in _queries()],
        "instances": [
            structure_to_json(i)
            for i in _family(count, seed, nodes, density)
        ],
    }


# ----------------------------------------------------------------------
# The direct (no service) oracle, in a fresh interpreter
# ----------------------------------------------------------------------


def _worker_direct() -> dict:
    """Screen every bench family directly through one serial Session;
    the timing covers the 8 concurrency families, the kill family is
    digested untimed.

    The oracle runs the *same* engine configuration the service is
    required to run — durable store attached, shard checkpointing on —
    so the throughput ratio isolates the service tier (HTTP, job
    queue, wire codecs) instead of charging the service for the
    durability the kill -9 gate demands of it.
    """
    from repro import EngineConfig, Session

    queries = _queries()
    families = [
        _family(FAMILY_COUNT, FAMILY_SEED + i) for i in range(CLIENTS)
    ]
    with tempfile.TemporaryDirectory(
        prefix="repro-bench-direct-"
    ) as cache_dir, Session(
        EngineConfig(workers=0, cache_dir=cache_dir)
    ) as session:
        start = time.perf_counter()
        digests = [
            _digest(session.screen(queries, family))
            for family in families
        ]
        elapsed = time.perf_counter() - start
        kill_digest = _digest(
            session.screen(
                queries,
                _family(KILL_COUNT, KILL_SEED, KILL_NODES, KILL_DENSITY),
            )
        )
    return {
        "elapsed": elapsed,
        "digests": digests,
        "kill_digest": kill_digest,
        "answers": CLIENTS * FAMILY_COUNT * len(queries),
    }


def _run_direct() -> dict:
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--worker", "direct"],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench child (direct) failed rc={proc.returncode}:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Server lifecycle
# ----------------------------------------------------------------------


def _start_server(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_HOM_WORKERS"] = "0"  # engine-serial inside the service
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro",
            "--cache-dir", cache_dir,
            "serve", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=str(REPO_ROOT),
        env=env,
    )
    line = proc.stdout.readline()
    if "listening" not in line:
        proc.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    port = int(line.strip().rsplit(":", 1)[1])
    return proc, port


def _stop_server(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(10)


# ----------------------------------------------------------------------
# Leg 1: concurrent screen-job clients
# ----------------------------------------------------------------------


def bench_concurrent(cache_dir: str) -> dict:
    from repro.service.client import ServiceClient

    # payload construction is request *preparation*, not service work:
    # build every submission before the timed window opens
    payloads = [
        _screen_payload(FAMILY_COUNT, FAMILY_SEED + i)
        for i in range(CLIENTS)
    ]
    proc, port = _start_server(cache_dir)
    try:
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        latencies = [0.0] * CLIENTS
        matrices: list = [None] * CLIENTS
        errors: list = []

        def one(i: int) -> None:
            # results arrive over the SSE stream (event: done carries
            # the final record), so completion is pushed, not polled —
            # 8 clients hammering GET /v1/jobs/<id> would steal GIL
            # time from the very engine threads being measured
            try:
                started = time.perf_counter()
                record = client.submit(
                    "screen", payloads[i], tenant=f"bench{i}"
                )
                final = None
                for event, data in client.watch(
                    record["id"], timeout=600.0
                ):
                    if event == "done":
                        final = data
                latencies[i] = time.perf_counter() - started
                if not final or final["status"] != "done":
                    raise RuntimeError(
                        f"job {record['id']} did not stream to done: "
                        f"{final!r}"
                    )
                matrices[i] = final["result"]["matrix"]
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"client {i}: {exc}")

        threads = [
            threading.Thread(target=one, args=(i,))
            for i in range(CLIENTS)
        ]
        wall_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - wall_start
        if errors:
            raise RuntimeError("; ".join(errors))
    finally:
        _stop_server(proc)

    answers = CLIENTS * FAMILY_COUNT * QUERY_COUNT
    ordered = sorted(latencies)
    return {
        "clients": CLIENTS,
        "answers": answers,
        "wall_s": wall,
        "throughput_per_s": answers / wall,
        "p50_ms": ordered[len(ordered) // 2] * 1e3,
        "p99_ms": ordered[
            min(len(ordered) - 1, int(len(ordered) * 0.99))
        ] * 1e3,
        "digests": [_digest(m) for m in matrices],
    }


# ----------------------------------------------------------------------
# Leg 2: kill -9 and resume from the store
# ----------------------------------------------------------------------


def bench_kill9(cache_dir: str) -> dict:
    from repro.service.client import ServiceClient

    payload = _screen_payload(
        KILL_COUNT, KILL_SEED, KILL_NODES, KILL_DENSITY
    )
    proc, port = _start_server(cache_dir)
    job_id = None
    try:
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        record = client.submit("screen", payload, tenant="kill")
        job_id = record["id"]
        # wait for the first shards to settle (checkpoint rows exist),
        # then SIGKILL the server mid-job
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            got = client.job(job_id)
            if got["events"] >= KILL_AFTER_EVENTS:
                break
            if got["status"] in ("done", "failed"):
                break
            time.sleep(0.02)
        events_at_kill = client.job(job_id)["events"]
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(10)

    restart = time.perf_counter()
    proc, port = _start_server(cache_dir)
    try:
        client = ServiceClient("127.0.0.1", port, timeout=60.0)
        final = client.wait(job_id, timeout=600.0)
        resume_s = time.perf_counter() - restart
        recovered = client.metrics()["service"]["recovered"]
    finally:
        _stop_server(proc)
    if final["status"] != "done":
        raise RuntimeError(
            f"resumed job {job_id} {final['status']}: "
            f"{final.get('error')}"
        )
    return {
        "instances": KILL_COUNT,
        "events_at_kill": events_at_kill,
        "resume_s": resume_s,
        "recovered_jobs": recovered,
        "digest": _digest(final["result"]["matrix"]),
    }


# ----------------------------------------------------------------------
# Smoke (the CI liveness leg)
# ----------------------------------------------------------------------


def smoke() -> int:
    from repro.service.client import ServiceClient

    with tempfile.TemporaryDirectory(prefix="repro-svc-smoke-") as tmp:
        proc, port = _start_server(tmp)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=30.0)
            health = client.healthz()
            assert health["status"] == "ok", health
            config = client.config()
            assert config["cache_path"].endswith(
                "repro_store.sqlite"
            ), config
            record = client.submit(
                "screen",
                _screen_payload(4, FAMILY_SEED, nodes=24, density=4.0),
            )
            spans = []
            final = None
            for event, data in client.watch(record["id"]):
                if event == "shard":
                    spans.append((data["start"], data["stop"]))
                else:
                    final = data
            assert final and final["status"] == "done", final
            spans.sort()
            assert spans[0][0] == 0 and spans[-1][1] == 4, spans
            assert all(
                a[1] == b[0] for a, b in zip(spans, spans[1:])
            ), spans
            metrics = client.metrics()
            assert metrics["service"]["completed"] == 1, metrics
            print(
                f"[bench_service] smoke OK: {len(spans)} shards, "
                f"healthz/config/metrics served on port {port}"
            )
            return 0
        finally:
            _stop_server(proc)


# ----------------------------------------------------------------------


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every criterion holds",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI liveness leg only: boot, submit, stream, assert",
    )
    parser.add_argument(
        "--worker",
        choices=("direct",),
        default=None,
        help=argparse.SUPPRESS,  # internal: the oracle measurement
    )
    args = parser.parse_args()

    if args.worker is not None:
        print(json.dumps(_worker_direct()))
        return 0
    if args.smoke:
        return smoke()

    direct = _run_direct()
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as tmp:
        concurrent = bench_concurrent(str(Path(tmp) / "concurrent"))
        kill9 = bench_kill9(str(Path(tmp) / "kill9"))

    direct_throughput = direct["answers"] / direct["elapsed"]
    ratio = concurrent["throughput_per_s"] / direct_throughput
    answers_match = concurrent["digests"] == direct["digests"]
    resume_match = kill9["digest"] == direct["kill_digest"]

    print(
        f"[bench_service] {CLIENTS} concurrent screen jobs: "
        f"p50 {concurrent['p50_ms']:.0f}ms, "
        f"p99 {concurrent['p99_ms']:.0f}ms, "
        f"{concurrent['throughput_per_s']:.1f} answers/s "
        f"({ratio:.2f}x direct), answers "
        f"{'identical' if answers_match else 'DIVERGED'}"
    )
    print(
        f"[bench_service] kill -9 resume: {kill9['events_at_kill']} "
        f"shards settled at kill, resumed in {kill9['resume_s']:.2f}s, "
        f"answers {'identical' if resume_match else 'DIVERGED'}"
    )

    criteria = {
        "throughput_ge_0_8x_direct": {
            "enforced": True,
            "skip_reason": None,
            "value": ratio,
            "pass": ratio >= MIN_THROUGHPUT_RATIO,
        },
        "concurrent_answers_identical": {
            "enforced": True,
            "skip_reason": None,
            "value": answers_match,
            "pass": answers_match,
        },
        "kill9_resume_answers_identical": {
            "enforced": True,
            "skip_reason": None,
            "value": resume_match,
            "pass": resume_match,
        },
    }

    report = {
        "description": (
            "the job service under load against a real `repro serve` "
            "subprocess: 8 concurrent screen-job clients (p50/p99 "
            "latency, throughput vs one direct serial Session.screen "
            "of the same work) and a kill -9 mid-job restart that "
            "recovers the job from the durable store and replays "
            "checkpointed shards to a digest-identical matrix"
        ),
        "cpu_count": os.cpu_count() or 1,
        "queries": {
            "generator": "random_ditree_cq",
            "count": QUERY_COUNT,
            "size": QUERY_SIZE,
        },
        "instances": {
            "generator": "hostile_family",
            "per_job": FAMILY_COUNT,
            "nodes": FAMILY_NODES,
            "density": FAMILY_DENSITY,
        },
        "direct": {
            "elapsed_s": direct["elapsed"],
            "throughput_per_s": direct_throughput,
        },
        "concurrent": concurrent,
        "kill9": kill9,
        "criteria": criteria,
    }
    args.output.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(f"[bench_service] wrote {args.output}")
    failures = 0
    for name, crit in criteria.items():
        if not crit["enforced"]:
            print(f"  criterion {name}: SKIPPED ({crit['skip_reason']})")
        elif crit["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(f"  criterion {name}: FAIL (value {crit['value']})")
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
