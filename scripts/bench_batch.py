#!/usr/bin/env python
"""Benchmark harness: the matrix backend and the sharded batch runtime.

Two perf surfaces introduced by the matrix-semiring/runtime PR, seeded
into ``BENCH_batch.json`` at the repo root:

* **Backend duel** — ``bitset`` vs ``matrix`` per-check times on large
  random targets (n >= 200, edge-rich), over propagation-heavy queries
  (unlabelled paths and ditrees, where arc consistency dominates and
  the dense boolean-semiring matvec replaces per-candidate Python
  loops).  A mixed labelled query is recorded as extra information but
  not gated: on label-pruned domains the bitset backend's tiny
  constants win, which is exactly why ``bitset`` stays the default.
* **Shard executor** — serial vs sharded batch evaluation on
  ``workloads.instance_family`` screening at 4 workers: the gated
  ``evaluate_batch`` shape is the multi-query screen
  (:func:`repro.core.runtime.parallel_screen`, which amortises the
  per-instance wire/rebuild cost over the query pool — the zoo
  bulk-classification traffic), plus sharded ``covers_any`` and the
  small-batch serial fallback (which must not regress).  The
  single-query ``evaluate_batch`` sharding is recorded as information:
  it is rebuild-bound by design and stays near break-even.

Criteria are *hardware-aware*: the matrix criterion is enforced only
when numpy is installed (without it the backend falls back to bitset
and the duel is vacuous), and the sharding criterion only on machines
with >= 4 CPUs (the workers would otherwise time-slice one core).
Skipped criteria are recorded as skipped, never silently passed.

Usage::

    python scripts/bench_batch.py [--check] [--output PATH] [--rounds N]

``--check`` exits non-zero unless every *enforced* criterion holds:
matrix >= 2x geomean over bitset on the large-target suite, sharded
>= 2x geomean over serial at 4 workers, small-batch fallback within
noise of the serial path.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

# Measure the engine, not the caches: the parent process and every
# forked worker run with the hom-cache and the worker-side structure
# cache disabled, so repeated rounds are never answered from an LRU.
# Setting the environment (rather than configure_cache on the parent
# session) is deliberate — workers build their default session from
# the inherited environment, and EngineConfig.from_env reads it at
# first engine use, i.e. after these lines.
os.environ["REPRO_HOM_CACHE"] = "0"
os.environ["REPRO_HOM_WORKER_CACHE"] = "0"

from repro.core.homengine import (  # noqa: E402
    covers_any,
    evaluate_batch,
    has_homomorphism,
    matrix_backend_available,
)
from repro.core.runtime import (  # noqa: E402
    configure_pool,
    parallel_covers_any,
    parallel_evaluate_batch,
    parallel_screen,
    pool_info,
    shutdown_pool,
)
from repro.core.structure import StructureBuilder, path_structure  # noqa: E402
from repro.workloads.generators import (  # noqa: E402
    block_dag_instance,
    instance_family,
    random_instance,
)

MIN_MATRIX_GEOMEAN = 2.0
MIN_SHARDED_GEOMEAN = 2.0
SHARD_WORKERS = 4
# The serial-fallback path is the serial path plus one length check;
# anything beyond scheduler noise would be a wiring bug.
MAX_FALLBACK_RATIO = 1.35

TARGET_LABELS = {"T": 1, "F": 1, "": 20, "A": 2, "FT": 0}


def unlabelled_ditree(n: int, seed: int):
    rng = random.Random(seed)
    b = StructureBuilder()
    for i in range(n):
        b.add_node(i)
    for i in range(1, n):
        b.add_edge(rng.randrange(i), i)
    return b.build()


# Propagation-heavy queries: domains start near-full, so AC-3 and
# forward checking dominate — the regime the dense backend targets.
GATED_QUERIES = [
    ("path8", path_structure([""] * 8)),
    ("path12", path_structure([""] * 12)),
    ("tree10", unlabelled_ditree(10, 1)),
    ("tree14", unlabelled_ditree(14, 2)),
]
# Label-pruned mixed query: recorded, not gated (bitset's home turf).
INFO_QUERIES = [
    ("labpath10", path_structure(["T"] + [""] * 8 + ["F"])),
]

LARGE_TARGETS = [
    # (name, n, edges)
    ("n200_e4n", 200, 800),
    ("n300_e4n", 300, 1200),
    ("n300_e8n", 300, 2400),
    ("n500_e6n", 500, 3000),
]


def best_time(fn, rounds: int, target_s: float = 0.1) -> float:
    """Minimum per-call wall time over ``rounds`` measurements."""
    start = time.perf_counter()
    fn()
    once = time.perf_counter() - start
    iters = max(1, int(target_s / max(once, 1e-9)))
    best = once
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_backend_duel(rounds: int) -> dict:
    checks = {}
    gated_speedups = []
    info_speedups = []
    for tname, n, edges in LARGE_TARGETS:
        target = random_instance(
            n, edges, seed=7, preds=("R",), label_weights=TARGET_LABELS
        )
        for gated, queries in ((True, GATED_QUERIES), (False, INFO_QUERIES)):
            for qname, q in queries:
                times = {}
                for backend in ("bitset", "matrix"):
                    times[backend] = best_time(
                        lambda b=backend: has_homomorphism(
                            q, target, backend=b, use_cache=False
                        ),
                        rounds,
                    )
                speedup = times["bitset"] / times["matrix"]
                (gated_speedups if gated else info_speedups).append(speedup)
                checks[f"{tname}/{qname}"] = {
                    "bitset_s": times["bitset"],
                    "matrix_s": times["matrix"],
                    "speedup": speedup,
                    "gated": gated,
                }
                print(
                    f"[bench_batch] {tname}/{qname}: "
                    f"bitset {times['bitset'] * 1e3:.2f}ms, "
                    f"matrix {times['matrix'] * 1e3:.2f}ms "
                    f"({speedup:.2f}x{'' if gated else ', info-only'})"
                )
    return {
        "checks": checks,
        "geomean_speedup_gated": geomean(gated_speedups),
        "min_speedup_gated": min(gated_speedups),
        "geomean_speedup_info": geomean(info_speedups),
    }


def bench_sharding(rounds: int) -> dict:
    # The bulk-classification shape: a pool of queries screened over
    # one family of large random instances.  Sharding by instances and
    # answering every query per chunk amortises the per-instance
    # wire/rebuild cost over the query pool, so worker search time
    # dominates and the shards scale.
    family = instance_family(
        32, 400, 1600, seed=13, label_weights=TARGET_LABELS
    )
    screen_queries = [
        path_structure([""] * 8),
        path_structure([""] * 12),
        unlabelled_ditree(10, 5),
        path_structure(["T"] + [""] * 8 + [""]),
    ]
    single_query = path_structure([""] * 12)
    # covers_any: every source is an unlabelled 11-node path, the
    # target's longest walk has 7 edges — each check runs the full AC-3
    # refutation and the scan can never early-exit.
    target = block_dag_instance(400, 8, seed=21)
    sources = [
        path_structure([""] * 11, prefix=f"s{i}") for i in range(96)
    ]

    serial_screen = best_time(
        lambda: [evaluate_batch(q, family) for q in screen_queries], rounds
    )
    serial_eval = best_time(
        lambda: evaluate_batch(single_query, family), rounds
    )
    serial_covers = best_time(lambda: covers_any(target, sources), rounds)

    configure_pool(workers=SHARD_WORKERS, min_batch=8)
    # Warm the pool (fork + import cost is a one-time amortised spawn,
    # not per-batch latency) and verify agreement while at it.
    agreement = parallel_screen(
        screen_queries, family, workers=SHARD_WORKERS
    ) == [evaluate_batch(q, family) for q in screen_queries]
    agreement = agreement and parallel_evaluate_batch(
        single_query, family, workers=SHARD_WORKERS
    ) == evaluate_batch(single_query, family)
    pool_ok = pool_info().running and not pool_info().broken
    sharded_screen = best_time(
        lambda: parallel_screen(
            screen_queries, family, workers=SHARD_WORKERS
        ),
        rounds,
    )
    sharded_eval = best_time(
        lambda: parallel_evaluate_batch(
            single_query, family, workers=SHARD_WORKERS
        ),
        rounds,
    )
    sharded_covers = best_time(
        lambda: parallel_covers_any(target, sources, workers=SHARD_WORKERS),
        rounds,
    )

    # Small-batch fallback: below min_batch the parallel entry points
    # must route straight to the serial path.
    small = family[:6]
    serial_small = best_time(
        lambda: evaluate_batch(single_query, small), rounds
    )
    fallback_small = best_time(
        lambda: parallel_evaluate_batch(single_query, small, min_batch=24),
        rounds,
    )
    shutdown_pool()

    screen_speedup = serial_screen / sharded_screen
    eval_speedup = serial_eval / sharded_eval
    covers_speedup = serial_covers / sharded_covers
    print(
        f"[bench_batch] screen {len(screen_queries)}q x {len(family)}i: "
        f"serial {serial_screen * 1e3:.1f}ms, "
        f"sharded {sharded_screen * 1e3:.1f}ms ({screen_speedup:.2f}x)"
    )
    print(
        f"[bench_batch] evaluate_batch 1q x {len(family)}i: "
        f"serial {serial_eval * 1e3:.1f}ms,"
        f" sharded {sharded_eval * 1e3:.1f}ms "
        f"({eval_speedup:.2f}x, info-only: rebuild-bound)"
    )
    print(
        f"[bench_batch] covers_any x{len(sources)}: "
        f"serial {serial_covers * 1e3:.1f}ms, "
        f"sharded {sharded_covers * 1e3:.1f}ms ({covers_speedup:.2f}x)"
    )
    print(
        f"[bench_batch] small-batch fallback: serial "
        f"{serial_small * 1e6:.0f}us, via parallel API "
        f"{fallback_small * 1e6:.0f}us "
        f"({fallback_small / serial_small:.2f}x)"
    )
    return {
        "workers": SHARD_WORKERS,
        "pool_available": pool_ok,
        "parallel_agrees_with_serial": agreement,
        "screen": {
            "queries": len(screen_queries),
            "family": {"count": 32, "n": 400, "edges": 1600},
            "serial_s": serial_screen,
            "sharded_s": sharded_screen,
            "speedup": screen_speedup,
        },
        "evaluate_batch_single_query_info": {
            "family": {"count": 32, "n": 400, "edges": 1600},
            "serial_s": serial_eval,
            "sharded_s": sharded_eval,
            "speedup": eval_speedup,
        },
        "covers_any": {
            "batch": {"count": 96, "target": "block_dag_instance(400, 8)"},
            "serial_s": serial_covers,
            "sharded_s": sharded_covers,
            "speedup": covers_speedup,
        },
        "geomean_speedup": geomean([screen_speedup, covers_speedup]),
        "small_batch": {
            "serial_s": serial_small,
            "fallback_s": fallback_small,
            "ratio": fallback_small / serial_small,
        },
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_batch.json",
        help="where to write the results",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="timing rounds per measurement (minimum is reported)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every enforced criterion holds",
    )
    args = parser.parse_args()

    cpus = os.cpu_count() or 1
    matrix_ok = matrix_backend_available()

    duel = bench_backend_duel(args.rounds)
    shard = bench_sharding(args.rounds)

    criteria = {
        "matrix_geomean_speedup_ge_2x": {
            "enforced": matrix_ok,
            "skip_reason": None if matrix_ok else "numpy not installed "
            "(matrix backend runs the bitset fallback)",
            "value": duel["geomean_speedup_gated"],
            "pass": duel["geomean_speedup_gated"] >= MIN_MATRIX_GEOMEAN,
        },
        "sharded_geomean_speedup_ge_2x_at_4_workers": {
            "enforced": cpus >= SHARD_WORKERS and shard["pool_available"],
            "skip_reason": None
            if cpus >= SHARD_WORKERS and shard["pool_available"]
            else f"needs >= {SHARD_WORKERS} CPUs and process support "
            f"(have {cpus} CPUs, pool_available="
            f"{shard['pool_available']})",
            "value": shard["geomean_speedup"],
            "pass": shard["geomean_speedup"] >= MIN_SHARDED_GEOMEAN,
        },
        "parallel_agrees_with_serial": {
            "enforced": True,
            "skip_reason": None,
            "value": shard["parallel_agrees_with_serial"],
            "pass": shard["parallel_agrees_with_serial"],
        },
        "small_batch_fallback_no_regression": {
            "enforced": True,
            "skip_reason": None,
            "value": shard["small_batch"]["ratio"],
            "pass": shard["small_batch"]["ratio"] <= MAX_FALLBACK_RATIO,
        },
    }

    report = {
        "description": (
            "Matrix backend vs bitset on large random targets (gated: "
            "propagation-heavy queries; info: label-pruned), and serial "
            "vs sharded batch evaluation at 4 workers on "
            "instance_family screening; hom-cache disabled; times are "
            "best-of-rounds wall clock"
        ),
        "cpu_count": cpus,
        "matrix_backend_available": matrix_ok,
        "rounds": args.rounds,
        "backend_duel": duel,
        "sharding": shard,
        "criteria": criteria,
    }
    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[bench_batch] wrote {args.output}")
    print(
        f"  matrix geomean speedup {duel['geomean_speedup_gated']:.2f}x "
        f"gated (min {duel['min_speedup_gated']:.2f}x, "
        f"info {duel['geomean_speedup_info']:.2f}x)"
    )
    print(
        f"  sharded geomean speedup {shard['geomean_speedup']:.2f}x at "
        f"{SHARD_WORKERS} workers ({cpus} CPUs)"
    )
    failures = 0
    for name, crit in criteria.items():
        if not crit["enforced"]:
            print(f"  criterion {name}: SKIPPED ({crit['skip_reason']})")
        elif crit["pass"]:
            print(f"  criterion {name}: PASS")
        else:
            print(f"  criterion {name}: FAIL (value {crit['value']})")
            failures += 1
    if args.check and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
