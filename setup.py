"""Legacy setup shim: lets ``pip install -e .`` work offline (no wheel).

The ``matrix`` extra pulls in numpy for the dense boolean-matrix-
semiring hom backend; the library runs fully without it (the backend
falls back to the pure-python int-bitset search).
"""

from setuptools import setup

setup(
    extras_require={
        "matrix": ["numpy>=1.24"],
    },
)
