"""Proposition 5: d-sirups as Schema.org / DL-Lite_bool mediated queries.

A covering axiom ``T(x) | F(x) <- A(x)`` is exactly a Schema.org range
constraint like "the range of musicBy is covered by MusicGroup and
Person".  This example translates a d-sirup into that setting and shows
(Proposition 5) that certain answers and FO-rewritings transfer both
ways -- the bridge behind Theorem 6's 2ExpTime-hardness for Schema.org.
"""

from repro import zoo
from repro.core import OneCQ, certain_answer, ucq_rewriting
from repro.obda.schema_org import (
    certain_answer_schema_org,
    data_to_schema_org,
    dl_lite_ontology,
    rewrite_ucq_to_schema_org,
    schema_org_rules,
)
from repro.workloads.generators import random_instance


def main() -> None:
    q = zoo.q5()
    print("the d-sirup CQ q5 as a Schema.org ontology-mediated query")
    print()
    print("covering rules:")
    print(schema_org_rules(q))
    print()
    print("in DL-Lite_bool syntax:")
    print(dl_lite_ontology(q))
    print()

    # Certain answers agree on translated data (Proposition 5).
    agreements = 0
    trials = 30
    for seed in range(trials):
        data = random_instance(n=8, edge_count=14, seed=seed)
        direct = certain_answer(q, data)
        translated = certain_answer_schema_org(q, data_to_schema_org(data))
        agreements += direct == translated
    print(f"certain answers agree on {agreements}/{trials} random instances")

    # FO-rewritings transfer: rewrite the UCQ of q5 to the Schema.org
    # vocabulary (A(y) becomes exists x. R(x, y)).
    ucq = ucq_rewriting(OneCQ.from_structure(q), depth=1)
    translated_ucq = rewrite_ucq_to_schema_org(ucq)
    print(f"UCQ rewriting transferred: {len(ucq)} -> "
          f"{len(translated_ucq)} disjuncts")
    print()
    print("first transferred disjunct:")
    print(translated_ucq[0].describe())


if __name__ == "__main__":
    main()
