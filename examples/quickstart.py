"""Quickstart: d-sirups, cactuses and boundedness in five minutes.

Run with ``python examples/quickstart.py`` after ``pip install -e .``.

This walks through the paper's opening example: the covering axiom
``T(x) | F(x) <- A(x)`` turns a plain conjunctive query into a recursive
one, and the central question is whether that recursion can be unfolded
to bounded depth (FO-rewritability).
"""

from repro import EngineConfig, Session, zoo
from repro.core import (
    OneCQ,
    certain_answer,
    compile_programs,
    configure_pool,
    evaluate,
    iter_cactuses,
    matrix_backend_available,
    parallel_evaluate_batch,
    probe_boundedness,
    shutdown_pool,
    ucq_certain_answers,
    ucq_rewriting,
)
from repro.workloads import instance_family


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A d-sirup is a Boolean CQ q evaluated under the covering axiom.
    #    q2 from Example 1:  T -S-> T -R-> F  (P-complete evaluation).
    # ------------------------------------------------------------------
    q2 = zoo.q2()
    d2 = zoo.d2()
    print("q2 atoms:")
    print(q2.describe())
    print()
    answer = certain_answer(q2, d2)
    print(f"certain answer of (Delta_q2, G) over D2: {answer}")

    # ------------------------------------------------------------------
    # 2. For 1-CQs the d-sirup is equivalent to the datalog program Pi_q
    #    with recursive sirup Sigma_q (rules (5)-(7) of the paper).
    # ------------------------------------------------------------------
    programs = compile_programs(q2)
    print()
    print("compiled datalog program Pi_q2:")
    print(programs.pi.describe())
    result = evaluate(programs.pi, d2)
    print(f"datalog engine agrees: {result.holds(programs.goal)}")

    # ------------------------------------------------------------------
    # 3. Recursion unfolds into cactuses (the Q-expansions of Sec. 2).
    # ------------------------------------------------------------------
    one_cq = OneCQ.from_structure(q2)
    print()
    print("first cactuses for q2:")
    for cactus in list(iter_cactuses(one_cq, max_depth=2))[:4]:
        print(f"  {cactus.describe()}")

    # ------------------------------------------------------------------
    # 4. Boundedness: q5 is bounded (FO-rewritable), q2 is not.
    # ------------------------------------------------------------------
    print()
    for name, q in [("q2", zoo.q2()), ("q5", zoo.q5())]:
        verdict = probe_boundedness(OneCQ.from_structure(q), probe_depth=3)
        print(f"boundedness probe for {name}: {verdict.describe()}")

    # ------------------------------------------------------------------
    # 5. A bounded query has a UCQ rewriting usable on any RDBMS.
    # ------------------------------------------------------------------
    rewriting = ucq_rewriting(OneCQ.from_structure(zoo.q5()), depth=1)
    print()
    print(f"UCQ rewriting of (Pi_q5, G): {len(rewriting)} disjuncts, "
          f"sizes {[r.size() for r in rewriting]}")

    # ------------------------------------------------------------------
    # 6. Engine knobs: hom backends and the sharded batch runtime.
    #
    #    Backends: "naive" (oracle), "bitset" (default), "matrix"
    #    (numpy boolean-matrix semiring, best on large edge-rich
    #    targets; falls back to the bitset search when numpy is
    #    missing).  Select per call with backend=..., per process with
    #    set_default_backend(...) or REPRO_HOM_BACKEND.
    #
    #    Batch traffic can shard across a bounded process pool:
    #    REPRO_HOM_WORKERS (or configure_pool) sets the worker count,
    #    REPRO_HOM_PARALLEL_MIN the batch size below which everything
    #    stays on the serial fast path.  ucq_certain_answers and the
    #    boundedness probe route through it automatically;
    #    parallel_evaluate_batch / parallel_covers_any /
    #    parallel_screen are the direct entry points.
    # ------------------------------------------------------------------
    print()
    print(f"matrix backend available: {matrix_backend_available()}")
    family = instance_family(count=32, n=20, edge_count=40, seed=1)
    configure_pool(workers=2, min_batch=16)
    answers = parallel_evaluate_batch(rewriting[0], family)
    screened = ucq_certain_answers(rewriting, family)
    shutdown_pool()
    print(f"family of {len(family)} instances: "
          f"{sum(answers)} match disjunct 0, "
          f"{sum(screened)} satisfy the full UCQ")

    # ------------------------------------------------------------------
    # 7. Sessions: one typed configuration + execution context.
    #
    #    Everything above ran in the *default session*, configured from
    #    the REPRO_* environment on first use — which is why the free
    #    functions keep working exactly as before.  For anything beyond
    #    one-off calls, build an explicit Session: it owns a frozen
    #    EngineConfig plus all mutable engine state (hom backend +
    #    hom-cache, cactus factory pool + structure intern, process
    #    pool), so two differently-configured evaluations can live side
    #    by side in one process without sharing anything.
    #
    #    Migration from the free functions is mechanical:
    #        certain_answer(q, d)        -> session.certain_answer(q, d)
    #        dsirup.evaluate(q, d, s)    -> session.evaluate_dsirup(q, d, s)
    #          (session.evaluate() now takes a *semiring* — see sec. 10;
    #           the old strategy form warns and delegates)
    #        count_homomorphisms         -> session.count_homomorphisms
    #          (now a thin wrapper over the COUNT semiring instance)
    #        decide_boundedness(q)       -> session.decide_boundedness(q)
    #        probe_boundedness(cq, d)    -> session.probe_boundedness(cq, d)
    #        ucq_certain_answers(u, f)   -> session.ucq_certain_answers(u, f)
    #        parallel_screen(qs, f)      -> session.screen(qs, f)
    #        set_default_backend(b)      -> EngineConfig(backend=b)
    #        configure_cache(...)        -> EngineConfig(hom_cache...=...)
    #        configure_pool(w, m)        -> EngineConfig(workers=w,
    #                                                    parallel_min=m)
    #    Precedence everywhere is env < config < per-call kwarg, and
    #    EngineConfig.from_env() is the only place REPRO_* is read.
    #
    #    backend="auto" resolves per call: matrix for large edge-rich
    #    targets, bitset otherwise (calibrated from BENCH_batch.json).
    # ------------------------------------------------------------------
    print()
    oracle = Session(EngineConfig(backend="naive", hom_cache=False))
    with Session(EngineConfig(backend="auto", workers=2,
                              parallel_min=16)) as fast:
        q5 = OneCQ.from_structure(zoo.q5())
        rewriting = fast.ucq_rewriting(q5, depth=1)
        agree = fast.ucq_certain_answers(rewriting, family) == \
            oracle.ucq_certain_answers(rewriting, family)
        print(f"sessions (auto vs naive oracle) agree on q5's UCQ: {agree}")

        # Streaming screen: shard results arrive in completion order,
        # so a long screen surfaces its first answers early.
        total = 0
        for shard in fast.screen(rewriting, family, stream=True):
            total += sum(any(col) for col in zip(*shard.answers))
        print(f"streamed screen: {total} instances satisfy some disjunct")
    oracle.close()

    # ------------------------------------------------------------------
    # 8. Choosing a backend: the decomp DP and the auto routing rules.
    #
    #    Four concrete backends answer every hom check identically:
    #
    #      naive   the original backtracker — the correctness oracle
    #      bitset  int-bitset AC-3 + backtracking — the default; best
    #              on small, label-pruned structures
    #      matrix  numpy boolean-semiring matvecs — best on LARGE
    #              DENSE targets (hundreds of nodes, >= ~4 edges/node)
    #      decomp  semijoin DP over a tree decomposition of the QUERY
    #              — polynomial-time for bounded-width queries, pure
    #              python.  Best whenever the query is tree-shaped
    #              (paths, ditrees, cactuses: width 1) and the target
    #              is large but not in matrix's dense corner, and on
    #              refutation-heavy workloads where backtracking AC-3
    #              re-enqueues: one directional semijoin pass per query
    #              edge decides the answer (BENCH_decomp.json).
    #
    #    The query's decomposition width is computed once and cached
    #    (repro.core.decomp.query_width); the compiled DecompPlan is
    #    interned per content fingerprint, so one plan is replayed
    #    across thousands of targets — pool workers included.
    #
    #    backend="auto" routes per call, in order:
    #      1. query width <= 1 and target >= 100 nodes and not
    #         (numpy present and >= 4 edges/node)   -> decomp
    #      2. target >= 100 nodes, >= 2 edges/node, numpy -> matrix
    #      3. everything else                            -> bitset
    #
    #    session.count_homomorphisms with backend="decomp" counts by
    #    bag products (no enumeration); chain-shaped probes (span-1
    #    queries, one cactus per depth) warm-start their coverage DP
    #    across depths, exchanging answers with the session hom-cache
    #    (REPRO_PROBE_WARMSTART=0 restores the batch path; bushy
    #    span>=2 probes keep it automatically).
    # ------------------------------------------------------------------
    from repro.core import decomp, path_structure, query_width

    q5_structure = zoo.q5()
    print()
    print(f"q5 decomposition width: {query_width(q5_structure)} "
          f"({decomp.tree_decomposition(q5_structure).describe()})")
    with Session(EngineConfig(backend="auto")) as routed:
        big = instance_family(count=1, n=150, edge_count=450, seed=2)[0]
        print("auto routes tree query on a large sparse target to:",
              routed.resolve_backend(None, big, path_structure([""] * 8)))
        print("certain answers agree on decomp:",
              routed.evaluate_batch(rewriting[0], family, backend="decomp")
              == answers)

    # ------------------------------------------------------------------
    # 9. Resilience: deadlines, fuel budgets, and tri-state answers.
    #
    #    Boundedness is undecidable in general and even the decidable
    #    fragments are 2ExpTime-hard, so any real deployment needs a
    #    way to say "spend at most this much".  EngineConfig has three
    #    cooperative budgets, checked cheaply inside the hot loops:
    #
    #      deadline_ms       wall-clock cap for one top-level call
    #      hom_fuel          unit-step cap on homomorphism search work
    #      cactus_max_nodes  size cap on any single cactus expansion
    #
    #    A governed call never hangs and never lies: instead of an
    #    answer it may return Answer.unknown(reason) — a tri-state
    #    value that refuses bool() so exhaustion cannot be mistaken
    #    for False.  The reasons mirror a typed failure taxonomy
    #    (EngineError > ResourceExhausted > DeadlineExceeded /
    #    FuelExhausted / CactusBudgetExceeded, plus WorkerFailure for
    #    pool faults); inner engine layers raise, only the outermost
    #    API converts to UNKNOWN.  Batch surfaces keep every answer
    #    settled before the budget tripped.
    #
    #    The process pool is governed too: shard_timeout_ms bounds any
    #    single shard, a crashed or hung worker pool is rebuilt and the
    #    failed shards requeued once, and a second failure quarantines
    #    the pool (cooldown, then a health probe respawns it) while the
    #    work completes serially in the parent — same answers, slower.
    # ------------------------------------------------------------------
    from repro import Answer

    print()
    # A hostile query under a deadline: q2's span-2 shape universe is
    # tower-exponential, so a deep probe would run ~forever ungoverned.
    # Under deadline_ms=2000 it returns UNKNOWN("deadline") within ~2x
    # the deadline; the example uses 300ms only to keep this file fast.
    hostile = OneCQ.from_structure(zoo.q2())
    with Session(EngineConfig(deadline_ms=300)) as governed:
        probe = governed.probe_boundedness(hostile, probe_depth=40)
        print(f"deep probe of q2 under a 300ms deadline: "
              f"{probe.describe()}")

        # Fuel-starved batch evaluation: settled prefixes survive,
        # exhausted slots come back UNKNOWN instead of a wrong False.
    with Session(EngineConfig(hom_fuel=50)) as governed:
        entries = governed.ucq_certain_answers(rewriting, family[:8])
        shown = ["?" if isinstance(e, Answer) and not e.known else e
                 for e in entries]
        print(f"fuel-starved UCQ sweep (tri-state): {shown}")
        unknown = next((e for e in entries
                        if isinstance(e, Answer) and not e.known), None)
        if unknown is not None:
            print(f"UNKNOWN reason: {unknown.reason!r}; bool() on it "
                  f"raises EngineError rather than guessing")

    # ------------------------------------------------------------------
    # 10. Semirings: one evaluation surface, every mode.
    #
    #    Session.evaluate(q, data, semiring=...) evaluates the CQ q as
    #    the K-relation provenance value
    #
    #        val(q, D) = SUM over homs h of PROD over atoms a of w(h(a))
    #
    #    for any registered commutative semiring K and any per-fact
    #    annotation w (weights={fact: value}; unannotated facts default
    #    to the semiring's one).  "bool" is the classic existence
    #    check, "count" the exact hom count, and the same DP backends
    #    (decomp's bag products, matrix's matvecs) run the weighted
    #    modes with no new algorithms — only the algebra changes.
    # ------------------------------------------------------------------
    from repro.core import BinaryFact, Structure

    # A tuple-independent probabilistic instance: each edge fact holds
    # independently with the annotated marginal probability.  Under
    # "prob" the value is the EXPECTED number of witnesses (exact, by
    # linearity of expectation — witnesses are not disjoint events).
    edge = path_structure(["", ""])          # one R-edge query
    diamond = Structure(
        nodes=("a", "b1", "b2", "c"),
        unary=(),
        binary=(
            BinaryFact("R", "a", "b1"), BinaryFact("R", "a", "b2"),
            BinaryFact("R", "b1", "c"), BinaryFact("R", "b2", "c"),
        ),
    )
    probs = {f: 0.5 for f in diamond.binary_facts}
    print()
    with Session() as s:
        ev = s.evaluate(edge, diamond, "prob", weights=probs)
        print(f"expected R-edge witnesses at p=0.5 each: {ev.value} "
              f"(4 edges x 0.5)")

        # Min-cost witness: annotate costs, read off the cheapest hom.
        # minplus is *selective* (x + y is one of x, y), so enumeration
        # carries the arg-best witness along for free.
        two_hop = path_structure(["", "", ""])
        costs = {BinaryFact("R", "a", "b1"): 1.0,
                 BinaryFact("R", "b1", "c"): 1.0,
                 BinaryFact("R", "a", "b2"): 5.0,
                 BinaryFact("R", "b2", "c"): 5.0}
        ev = s.evaluate(two_hop, diamond, "minplus", weights=costs,
                        backend="bitset")
        mid = ev.witness["v1"] if ev.witness else "?"
        print(f"cheapest 2-hop a->c costs {ev.value} (via {mid})")

        # Why-provenance: WHICH fact sets support the answer.  Values
        # are sets of witness fact-sets; every backend agrees with the
        # enumeration oracle because the algebra is the same.
        ev = s.evaluate(edge, diamond, "why")
        print(f"why-provenance of the R-edge query: "
              f"{len(ev.value)} singleton witness sets (one per edge)")

        # count_homomorphisms is now literally the COUNT instance:
        n_paths = s.count_homomorphisms(two_hop, diamond)
        assert n_paths == s.evaluate(two_hop, diamond, "count").value
        print(f"2-hop paths through the diamond: {n_paths}")

    # ------------------------------------------------------------------
    # 11. Durable engine state: the crash-safe store + checkpoint/resume.
    #
    #    EngineConfig(cache_dir=...) (or REPRO_CACHE_DIR) layers a disk
    #    tier under the session caches: hom answers, semiring values and
    #    compiled decomp plans spill to a checksummed sqlite store
    #    (repro.core.store.DurableStore), shared by pool workers and by
    #    every later process pointed at the same directory.  Long
    #    screens and boundedness probes also checkpoint their settled
    #    results row by row, so a killed process resumes where it died
    #    — identical answers, skipping finished work — instead of
    #    starting over.
    #
    #    The store is expendable by design: every row carries a
    #    checksum (corrupt rows are dropped and recomputed, never
    #    believed), a torn or version-skewed file is quarantined and
    #    rebuilt, and an unusable directory degrades the session to
    #    memory-only.  `python -m repro cache stats|clear|verify` and
    #    scripts/bench_store.py operate on it from the shell.
    # ------------------------------------------------------------------
    import tempfile

    print()
    with tempfile.TemporaryDirectory() as cache_dir:
        q5 = OneCQ.from_structure(zoo.q5())
        with Session(EngineConfig(cache_dir=cache_dir, workers=1)) as cold:
            cold_probe = cold.probe_boundedness(q5, probe_depth=3)
            cold_screen = cold.screen([zoo.q3(), zoo.q5()], family[:12])
            stats = cold.store.stats()
            print(f"cold run persisted {stats.entries} rows "
                  f"({len(stats.namespaces)} namespaces) to {stats.path}")

        # A brand-new process pointed at the same directory — here just
        # a second session — replays the checkpoints from disk: same
        # answers, (almost) no hom search.
        with Session(EngineConfig(cache_dir=cache_dir, workers=1)) as warm:
            warm_probe = warm.probe_boundedness(q5, probe_depth=3)
            warm_screen = warm.screen([zoo.q3(), zoo.q5()], family[:12])
            agree = (warm_probe.verdict == cold_probe.verdict
                     and warm_screen == cold_screen)
            print(f"warm restart agrees with cold run: {agree} "
                  f"(hom cache misses after restart: "
                  f"{warm.hom.cache_info().misses})")

    # ------------------------------------------------------------------
    # 12. The service tier: async jobs over HTTP with streaming results.
    #
    #    `python -m repro serve` exposes sessions as a multi-tenant job
    #    API: POST /v1/jobs accepts decide/evaluate/probe/screen work,
    #    GET /v1/jobs/<id>/events streams a screen's shards as
    #    server-sent events while the matrix fills in, and every job
    #    transition lands in the durable store.  So a server killed
    #    -9 mid-job reports — and *resumes* — that job after restart:
    #    the engine's shard checkpoints turn the re-run into a replay,
    #    and the answers come back digest-identical.
    # ------------------------------------------------------------------
    import os
    import signal
    import subprocess
    import sys
    from pathlib import Path

    import repro
    from repro.service import (
        ServiceClient,
        answer_to_json,
        structure_to_json,
    )

    def serve(state_dir, env_extra=None):
        """One `python -m repro serve` subprocess on a free port."""
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra or {})
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "--cache-dir", state_dir,
             "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        port = int(proc.stdout.readline().strip().rsplit(":", 1)[1])
        return proc, ServiceClient("127.0.0.1", port)

    print()
    screen_queries = [zoo.q3(), zoo.q5()]
    big_family = instance_family(24, 400, 1200, seed=11)
    payload = {
        "queries": [structure_to_json(q) for q in screen_queries],
        "instances": [structure_to_json(i) for i in big_family],
    }
    with Session(EngineConfig(workers=0)) as oracle:
        want = [[answer_to_json(a) for a in row]
                for row in oracle.screen(screen_queries, big_family)]

    with tempfile.TemporaryDirectory() as state_dir:
        # A short lease TTL so the killed server's job ownership lapses
        # quickly; the restarted server adopts the orphan at the next
        # heartbeat after expiry.
        lease = {"REPRO_SERVICE_LEASE_TTL_MS": "2000"}
        proc, client = serve(state_dir, env_extra=lease)
        try:
            job_id = client.submit("screen", payload)["id"]
            streamed = 0
            for event, _data in client.watch(job_id, timeout=120):
                if event == "shard":
                    streamed += 1
                    if streamed >= 2:
                        break  # enough streaming: crash the server
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait()
        print(f"server killed -9 mid-screen; job {job_id} had streamed "
              f"{streamed} shards over SSE")

        # A fresh server over the same state directory recovers the
        # in-flight job from its durable record and re-runs it — the
        # checkpointed shards replay from disk instead of recomputing.
        proc, client = serve(state_dir, env_extra=lease)
        try:
            final = client.wait(job_id, timeout=120)
            stats = client.metrics()["service"]
            resumed = stats["recovered"] + stats["adopted"]
            print(f"restarted server resumed {resumed} job(s): "
                  f"status {final['status']}, matrix identical to a "
                  f"direct Session.screen: "
                  f"{final['result']['matrix'] == want}")
        finally:
            proc.terminate()
            proc.wait()

    # ------------------------------------------------------------------
    # 13. Supervision: cancel, bounded retry, quarantine, drain.
    #
    #    Jobs are supervised.  Transient failures (a killed pool
    #    worker, a corrupted checkpoint row) are retried with
    #    exponential backoff and quarantined FAILED after
    #    `--retry-max` attempts; a running job can be cancelled
    #    cooperatively — the engine's Budget machinery checks the flag
    #    between shards and at search checkpoints — and its SSE stream
    #    ends in `event: cancelled`; SIGTERM drains gracefully:
    #    admission answers 503 + Retry-After while running jobs
    #    settle, queued jobs persist for the next process.  Knobs:
    #    serve --retry-max/--drain-ms/--lease-ttl-ms, or the matching
    #    REPRO_SERVICE_RETRY_MAX / REPRO_SERVICE_DRAIN_MS /
    #    REPRO_SERVICE_LEASE_TTL_MS environment variables.
    # ------------------------------------------------------------------
    print()
    with tempfile.TemporaryDirectory() as state_dir:
        # An injected fault (the engine's fault plan, here driven over
        # the environment) makes the first execution die like a real
        # worker crash; the supervisor retries and the job still lands.
        proc, client = serve(state_dir, env_extra={
            "REPRO_FAULT_PLAN": "jobfail:0",
            "REPRO_SERVICE_RETRY_BACKOFF_MS": "10",
        })
        try:
            hurt = client.wait(client.submit("decide", {
                "query": structure_to_json(zoo.q5()),
            })["id"], timeout=120)
            print(f"injected first-attempt crash: status "
                  f"{hurt['status']!r} after {hurt['attempts']} attempts")

            # Cooperative cancellation, observed over the live SSE
            # stream: cancel after the first shard and the stream's
            # terminal frame is `event: cancelled` (the shards already
            # checkpointed stay on disk for a later resubmit).
            job_id = client.submit("screen", payload)["id"]
            last = None
            for event, _data in client.watch(job_id, timeout=120):
                last = event
                if event == "shard":
                    client.cancel(job_id)
            record = client.job(job_id)
            print(f"cancelled mid-screen: terminal SSE event {last!r}, "
                  f"status {record['status']!r} after "
                  f"{record['events']} checkpointed shard(s)")
        finally:
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(30)
        print(f"SIGTERM drain: server exited {rc} (running jobs "
              f"settled, queued jobs persisted for the next process)")


if __name__ == "__main__":
    main()
