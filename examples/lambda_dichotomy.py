"""Theorem 9: the exact FO/L dichotomy decider for Lambda-CQs.

A Lambda-CQ is a ditree 1-CQ whose solitary T nodes are all incomparable
with the solitary F node.  Theorem 9 gives an exact decision procedure
(periodic structures, Claim 9.2) that is fixed-parameter tractable in
the span.  This example runs the decider over the zoo and a stream of
random Lambda-CQs, cross-checking against the depth-bounded
Proposition 2 probe, and reports the observed FO/L split.
"""

from repro import zoo
from repro.core import OneCQ, Verdict, probe_boundedness
from repro.ditree.lambda_cq import decide_lambda
from repro.workloads.generators import iter_lambda_cqs


def main() -> None:
    print("zoo Lambda-CQs:")
    for name in ("q4", "q5", "q6", "q7", "q8"):
        q = getattr(zoo, name)()
        one_cq = OneCQ.from_structure(q)
        decision = decide_lambda(one_cq)
        verdict = "FO-rewritable" if decision.fo_rewritable else "L-hard"
        print(f"  {name}: span={one_cq.span}  ->  {verdict}")
    print()

    print("random Lambda-CQs (span 1), decider vs Proposition 2 probe:")
    fo = l_hard = agreements = disagreements = 0
    for index, q in enumerate(iter_lambda_cqs(count=40, size=6, seed=7)):
        one_cq = OneCQ.from_structure(q)
        decision = decide_lambda(one_cq)
        probe = probe_boundedness(one_cq, probe_depth=3)
        if decision.fo_rewritable:
            fo += 1
            consistent = probe.verdict is not Verdict.UNBOUNDED_EVIDENCE
        else:
            l_hard += 1
            consistent = probe.verdict is not Verdict.BOUNDED
        agreements += consistent
        disagreements += not consistent
    print(f"  FO-rewritable: {fo}, L-hard: {l_hard}")
    print(f"  probe-consistent: {agreements}, inconsistent: {disagreements}")


if __name__ == "__main__":
    main()
