"""The paper's query zoo, classified end to end (Examples 1-5, Sec. 4).

Reproduces the data-complexity table of Example 1 and the ditree
classification results of Theorems 7, 9 and 11: for each query of the
zoo we report its shape census, the classifier verdicts and, where
decidable by our exact machinery, its FO-rewritability.
"""

from repro import zoo
from repro.core import OneCQ, probe_boundedness
from repro.ditree import DitreeCQ
from repro.ditree.classify import classify_disjoint, classify_plain
from repro.ditree.lambda_cq import decide_lambda
from repro.core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes


def census(q) -> str:
    return (
        f"F={len(solitary_f_nodes(q))} T={len(solitary_t_nodes(q))} "
        f"FT={len(twin_nodes(q))}"
    )


def main() -> None:
    print(f"{'query':6} {'census':14} {'paper':22} classifier verdicts")
    print("-" * 78)
    for entry in zoo.zoo_table():
        q = entry.query
        verdicts = []
        try:
            cq = DitreeCQ.from_structure(q)
        except ValueError:
            cq = None
        if cq is not None:
            plain = classify_plain(cq)
            verdicts.append(f"plain={plain.complexity.value}")
            disjoint = classify_disjoint(cq)
            verdicts.append(f"disjoint={disjoint.complexity.value}")
            if cq.is_lambda_cq():
                decision = decide_lambda(OneCQ.from_structure(q))
                verdicts.append(
                    "lambda=FO" if decision.fo_rewritable else "lambda=L-hard"
                )
        else:
            verdicts.append("not a ditree (dag query)")
        print(
            f"{entry.name:6} {census(q):14} {entry.expected:22} "
            + ", ".join(verdicts)
        )

    print()
    print("Sigma-sirup boundedness (Example 4): q5 focused/bounded, "
          "q6 unfocused/unbounded")
    for name, q in [("q5", zoo.q5()), ("q6", zoo.q6())]:
        one_cq = OneCQ.from_structure(q)
        pi_probe = probe_boundedness(one_cq, probe_depth=3)
        sigma_probe = probe_boundedness(
            one_cq, probe_depth=3, require_focus=True
        )
        print(f"  {name}: Pi {pi_probe.verdict.value}, "
              f"Sigma {sigma_probe.verdict.value}")


if __name__ == "__main__":
    main()
