"""The 2ExpTime-hardness pipeline of Theorem 3, end to end on toy ATMs.

For each toy alternating Turing machine and input we:

1. decide acceptance directly (the ground truth);
2. encode the computation space into 01-trees and check the
   correctness predicates of Claim 4.1;
3. build the formula library of Sec. 3.4 and the 1-CQ of Sec. 3.5;
4. run the operational Lemma 4 argument: the machine rejects iff every
   deep cactus skeleton exposes a cuttable (incorrect or rejecting)
   segment within a uniform depth K.
"""

from repro.atm import (
    accepts,
    build_query,
    skeleton_boundedness_semantics,
)
from repro.atm.machine import (
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)
from repro.core.cactus import structurally_focused


def main() -> None:
    scenarios = [
        ("always-accept", toy_accept_machine(), "1"),
        ("always-reject", toy_reject_machine(), "1"),
        ("first-bit-1, input 1", toy_alternation_machine(), "1"),
        ("first-bit-1, input 0", toy_alternation_machine(), "0"),
    ]
    for name, machine, word in scenarios:
        print(f"=== {name} ===")
        ground_truth = accepts(machine, word, 2, 16)
        print(f"machine accepts {word!r}: {ground_truth}")

        result = build_query(machine, word)
        print(result.describe())
        print(f"query is a dag: {result.query.is_dag()}, "
              f"structurally focused: {structurally_focused(result.one_cq)}")
        print(f"encoding: {result.params.describe()}")

        report = skeleton_boundedness_semantics(machine, word)
        print(report.describe())
        expectation = "unbounded" if ground_truth else "bounded"
        outcome = "bounded" if report.rejects else "unbounded"
        status = "OK" if (report.rejects != ground_truth) else "MISMATCH"
        print(f"Lemma 4 verdict: sirup {outcome} (expected {expectation}) "
              f"[{status}]")
        print()


if __name__ == "__main__":
    main()
